use crate::backend::{Backend, BddBackend, CutsetBackend, GenerationStats, MocusBackend};
use crate::canonical::{CacheStats, QuantCache};
use crate::error::CoreError;
use crate::ftc::FtcContext;
use crate::quantify::{KernelUsage, QuantifyOptions};
use crate::translate::translate;
use crate::worstcase::worst_case_probabilities;
use sdft_bdd::ModularBddOptions;
use sdft_ctmc::SolverWorkspace;
use sdft_ft::{Cutset, EventProbabilities, FallbackMode, FaultTree};
use sdft_mocus::MocusOptions;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Options for the full SD fault tree analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalysisOptions {
    /// The mission horizon `t` (e.g. 24 hours).
    pub horizon: f64,
    /// Cutset generation options, including the cutoff `c*`
    /// (default `10⁻¹⁵`, the paper's setting). The cutoff and order
    /// limits apply to both backends; the traversal-tuning fields only
    /// to MOCUS.
    pub mocus: MocusOptions,
    /// Which cutset-generation backend drives the static phase
    /// (default [`Backend::Mocus`]). [`Backend::Bdd`] produces the same
    /// cutset list plus the **exact** top-event probability of `FT̄`
    /// (reported per horizon through
    /// [`AnalysisResult::exact_static`]).
    pub backend: Backend,
    /// Truncation error for all transient analyses.
    pub epsilon: f64,
    /// Worker threads for cutset quantification; `0` uses all available
    /// cores.
    pub threads: usize,
    /// State budget for each per-cutset product chain.
    pub max_chain_states: usize,
    /// How much triggering logic the per-cutset models carry
    /// (see [`crate::TriggerTreatment`]).
    pub treatment: crate::TriggerTreatment,
    /// Deduplicate structurally identical cutset models through a
    /// [`QuantCache`], uniformizing each model equivalence class exactly
    /// once (default `true`; results are bitwise-identical either way).
    pub cache: bool,
    /// Let the uniformization kernel stop stepping once the DTMC
    /// iterates have converged and close the Poisson series with the
    /// remaining tail mass (default `true`; adds at most `epsilon` of
    /// extra error per horizon when it fires — disable for bitwise
    /// compatibility with the plain Jensen iteration).
    pub steady_state_detection: bool,
    /// Run the staged streaming engine — MOCUS generation, incremental
    /// subsumption and quantification fused over bounded channels — so
    /// peak cutset residency stays bounded instead of O(all candidates)
    /// (default `true`; results are bitwise-identical to the batch path
    /// for every thread count).
    pub streaming: bool,
    /// Emit a progress line to stderr at this interval while the
    /// streaming engine runs (candidates generated, cutsets finalized,
    /// models quantified, cache hit rate). `None` (the default) costs
    /// nothing; ignored by the batch path.
    pub progress: Option<Duration>,
    /// Shard count of the streaming subsumption filter. `0` (the
    /// default) picks automatically: one shard when `threads <= 1`
    /// (everything stays inline on the filter thread), otherwise up to
    /// four shard workers. Any shard count produces bitwise-identical
    /// results; ignored by the batch path.
    pub filter_shards: usize,
    /// When the streaming filter buffers an epoch for a one-pass batch
    /// merge instead of probing incrementally (default
    /// [`FallbackMode::Adaptive`]). Results are bitwise-identical in
    /// every mode; ignored by the batch path.
    pub filter_fallback: FallbackMode,
}

impl AnalysisOptions {
    /// Default options for the given horizon.
    #[must_use]
    pub fn new(horizon: f64) -> Self {
        AnalysisOptions {
            horizon,
            mocus: MocusOptions::default(),
            backend: Backend::default(),
            epsilon: 1e-12,
            threads: 0,
            max_chain_states: 2_000_000,
            treatment: crate::TriggerTreatment::Classified,
            cache: true,
            steady_state_detection: true,
            streaming: true,
            progress: None,
            filter_shards: 0,
            filter_fallback: FallbackMode::Adaptive,
        }
    }
}

/// Per-cutset record in an [`AnalysisResult`].
#[derive(Debug, Clone, PartialEq)]
pub struct CutsetReport {
    /// The minimal cutset (original tree ids).
    pub cutset: Cutset,
    /// `p̃(C)` — the time-aware probability (§V-C).
    pub probability: f64,
    /// The static (worst-case) probability `∏ p(a)` — the cutset's
    /// contribution to the static rare-event approximation.
    pub static_probability: f64,
    /// Dynamic events in the cutset.
    pub cutset_dynamic: usize,
    /// Dynamic events added by the triggering logic.
    pub added_dynamic: usize,
    /// Static events added by the triggering logic.
    pub added_static: usize,
    /// Product chain size of the cutset model (0 for static cutsets).
    pub chain_states: usize,
    /// Whether the general case was needed for some triggering gate.
    pub used_general: bool,
    /// Wall-clock time spent quantifying this cutset.
    pub quantification_time: Duration,
}

impl CutsetReport {
    /// Total dynamic events in the cutset's Markov model.
    #[must_use]
    pub fn model_dynamic(&self) -> usize {
        self.cutset_dynamic + self.added_dynamic
    }
}

/// Wall-clock breakdown of an analysis run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Timings {
    /// Computing worst-case probabilities for dynamic events (§V-B2).
    pub worst_case: Duration,
    /// Translating to the static tree `FT̄` (§V-B1).
    pub translation: Duration,
    /// MOCUS cutset generation.
    pub mcs_generation: Duration,
    /// Total dynamic quantification (all cutsets, wall clock).
    pub quantification: Duration,
    /// Wall-clock the quantification cache saved: solve time the cache
    /// hits would have re-spent uniformizing their class.
    pub quantification_saved: Duration,
    /// Wall-clock the uniformization kernel spent building its CSR
    /// forms (summed over all solved model classes).
    pub csr_build: Duration,
    /// Stage-seconds the streaming engine's generation and
    /// quantification spans ran concurrently (zero for the batch path,
    /// which runs the phases strictly in sequence).
    pub stream_overlap: Duration,
    /// Busy seconds of the generation stage (MOCUS/BDD enumeration on
    /// the calling thread; equals `mcs_generation` when streaming).
    pub generation_busy: Duration,
    /// Busy seconds of the streaming filter stage: time actually spent
    /// minimizing and releasing candidates, excluding channel waits
    /// (zero for the batch path, whose minimization is inside MOCUS).
    pub filter_busy: Duration,
    /// Busy seconds summed over quantification workers: time spent
    /// solving models, excluding channel waits. Exceeds wall-clock
    /// `quantification` when several workers run concurrently.
    pub quant_busy: Duration,
    /// Wall-clock inside the uniformization stepping loop (SpMV plus
    /// Poisson accumulation), summed over all solves. Divide
    /// `AnalysisStats::kernel_spmv_nonzeros` by this for the kernel's
    /// sustained nonzeros/second.
    pub spmv: Duration,
    /// End-to-end analysis time.
    pub total: Duration,
}

/// Per-shard counters of the streaming subsumption filter, aggregated
/// over every epoch the shard minimized. All scheduling-dependent: the
/// split of probes across shards follows the deterministic shard key,
/// but the counts themselves depend on candidate arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FilterShardStats {
    /// Candidates routed to this shard.
    pub offered: u64,
    /// Subset tests the shard performed.
    pub probes: u64,
    /// Candidates rejected as duplicates or subsumed.
    pub rejects: u64,
    /// Kept sets evicted by a later-accepted subset.
    pub evictions: u64,
    /// Deferred-eviction sweeps run at compaction points.
    pub compactions: u64,
    /// Epochs this shard minimized through the batch fallback.
    pub fallback_epochs: u64,
}

impl FilterShardStats {
    /// Fold one epoch's filter counters into the shard totals.
    pub(crate) fn absorb(&mut self, stats: sdft_ft::FilterStats) {
        self.offered += stats.offered;
        self.probes += stats.probes;
        self.rejects += stats.rejects;
        self.evictions += stats.evictions;
        self.compactions += stats.compactions;
        self.fallback_epochs += u64::from(stats.fell_back);
    }
}

/// Aggregate statistics of an analysis run (the quantities behind the
/// paper's Figures 2 and 3 and the §VI tables).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AnalysisStats {
    /// Number of minimal cutsets above the cutoff.
    pub num_cutsets: usize,
    /// Cutsets containing at least one dynamic event.
    pub num_dynamic_cutsets: usize,
    /// Histogram over cutsets: index = dynamic events *in the cutset*,
    /// value = number of cutsets (Figure 2).
    pub histogram_cutset_dynamic: Vec<usize>,
    /// Histogram over cutsets: index = dynamic events *in the Markov
    /// model* (cutset + added by triggering logic).
    pub histogram_model_dynamic: Vec<usize>,
    /// The largest per-cutset chain built.
    pub max_chain_states: usize,
    /// Distinct cutset-model equivalence classes consulted through the
    /// quantification cache (0 when caching is off).
    pub distinct_model_classes: usize,
    /// Cache consultations answered without uniformizing (deterministic
    /// for a fixed cutset list, regardless of thread scheduling).
    pub cache_hits: usize,
    /// Cache consultations that uniformized their class — exactly one
    /// per distinct class.
    pub cache_misses: usize,
    /// Uniformization passes the kernel ran (one per solved model
    /// class; deterministic for a fixed cutset list).
    pub kernel_solves: usize,
    /// DTMC steps the kernel actually took across those passes.
    pub kernel_steps: u64,
    /// DTMC steps steady-state detection saved against the full Poisson
    /// budgets.
    pub kernel_steps_saved: u64,
    /// Solves in which steady-state detection fired.
    pub steady_state_solves: usize,
    /// CSR entries streamed through the SpMV kernel (nonzeros × steps,
    /// summed over solves; deterministic for a fixed cutset list).
    pub kernel_spmv_nonzeros: u64,
    /// Solves that reused a workspace's memoized CSR instead of
    /// rebuilding it (depends on which worker saw which model when).
    pub kernel_csr_reuses: usize,
    /// Partial cutsets MOCUS processed (schedule-independent).
    pub mocus_partials_processed: u64,
    /// Partial cutsets MOCUS pruned via the cutoff, order limit or
    /// look-ahead bound (schedule-independent).
    pub mocus_partials_pruned: u64,
    /// Subset tests the cutset minimization performed
    /// (schedule-independent).
    pub mocus_subsumption_comparisons: u64,
    /// MOCUS tasks claimed from the shared work queue beyond each
    /// worker's first — 0 single-threaded; varies with scheduling.
    pub mocus_stolen_tasks: u64,
    /// Peak cutsets resident between generation and quantification: all
    /// candidates for the batch path, the filter stage's live minimal
    /// sets for the streaming engine (scheduling-dependent there).
    pub peak_pending_cutsets: usize,
    /// Peak cutset models enqueued-or-quantifying at once: the whole
    /// list for the batch path, bounded by the engine's channel
    /// capacity plus the worker count when streaming.
    pub peak_inflight_models: usize,
    /// Peak live partial cutsets inside MOCUS (scheduling-dependent).
    pub mocus_peak_live_partials: u64,
    /// Approximate peak bytes held by live MOCUS partials.
    pub mocus_peak_partial_bytes: u64,
    /// Peak candidate cutsets resident in the generator — all of them
    /// for the batch path, only undelivered buffers when streaming.
    pub mocus_peak_live_candidates: u64,
    /// Approximate peak bytes held by resident candidates.
    pub mocus_peak_candidate_bytes: u64,
    /// Shard count of the streaming subsumption filter (0 for the batch
    /// path, which minimizes in one pass inside generation).
    pub filter_shards: usize,
    /// Epochs the streaming filter minimized through the batch fallback,
    /// summed over shards (scheduling-dependent under `Adaptive`).
    pub filter_fallback_epochs: u64,
    /// Per-shard filter counters, in shard order (empty for batch).
    pub filter_shard_stats: Vec<FilterShardStats>,
    /// Which backend generated the cutsets.
    pub backend: Backend,
    /// Independent modules of `FT̄` the BDD backend built a diagram for
    /// (0 under MOCUS). Deterministic: module discovery and construction
    /// follow node-id order regardless of thread count.
    pub bdd_modules: usize,
    /// Total ROBDD nodes across all module diagrams.
    pub bdd_total_nodes: usize,
    /// Nodes of the largest single module diagram.
    pub bdd_max_module_nodes: usize,
    /// Per-module diagram sizes, in module-gate id order.
    pub bdd_per_module_nodes: Vec<usize>,
    /// Modules whose variable order came from the weighted heuristic
    /// rather than plain DFS order.
    pub bdd_weighted_orders: usize,
    /// Apply-cache hits across the whole modular construction
    /// (deterministic — modules are built sequentially in id order).
    pub bdd_apply_hits: u64,
    /// Apply-cache misses across the whole modular construction.
    pub bdd_apply_misses: u64,
}

impl AnalysisStats {
    /// Average dynamic events per dynamic cutset's Markov model (the
    /// paper reports 3.02 for the fully dynamic BWR model).
    #[must_use]
    pub fn avg_model_dynamic(&self) -> f64 {
        let (sum, count) = self
            .histogram_model_dynamic
            .iter()
            .enumerate()
            .skip(1)
            .fold((0usize, 0usize), |(s, c), (k, &n)| (s + k * n, c + n));
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }

    /// Fraction of cache consultations answered from the cache (0 when
    /// the cache was never consulted).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// The same statistics with every scheduling-dependent field zeroed
    /// — work-stealing counts, memory high-water marks, and the
    /// subsumption comparisons (whose count depends on candidate
    /// arrival order under the streaming engine). What remains is
    /// identical across thread counts *and* across the streaming/batch
    /// engines for the same analysis.
    #[must_use]
    pub fn deterministic(mut self) -> Self {
        self.kernel_csr_reuses = 0;
        self.mocus_stolen_tasks = 0;
        self.mocus_subsumption_comparisons = 0;
        self.peak_pending_cutsets = 0;
        self.peak_inflight_models = 0;
        self.mocus_peak_live_partials = 0;
        self.mocus_peak_partial_bytes = 0;
        self.mocus_peak_live_candidates = 0;
        self.mocus_peak_candidate_bytes = 0;
        self.filter_shards = 0;
        self.filter_fallback_epochs = 0;
        self.filter_shard_stats = Vec::new();
        self
    }
}

/// The result of a full SD fault tree analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisResult {
    /// The time-aware failure frequency: `Σ_C p̃(C)` (rare-event
    /// approximation over the quantified cutsets, §V).
    pub frequency: f64,
    /// The static rare-event approximation with worst-case probabilities —
    /// what a purely static analysis of the same model would report.
    pub static_rea: f64,
    /// The **exact** static top-event probability of `FT̄` at this
    /// horizon's worst-case probabilities — Shannon decomposition over
    /// the modular BDD, no cutoff, no rare-event approximation. `None`
    /// under the MOCUS backend, which never materializes an exact
    /// representation.
    pub exact_static: Option<f64>,
    /// The analysis horizon.
    pub horizon: f64,
    /// Per-cutset details, sorted by descending probability.
    pub cutsets: Vec<CutsetReport>,
    /// Wall-clock breakdown.
    pub timings: Timings,
    /// Aggregate statistics.
    pub stats: AnalysisStats,
}

impl AnalysisResult {
    /// Time-aware Fussell–Vesely importance: the fraction of the
    /// quantified frequency flowing through each basic event,
    /// `FV(a) = Σ_{C∋a} p̃(C) / Σ_C p̃(C)`, sorted descending (ties by
    /// event id). An extension over the paper — the same re-evaluation
    /// workflow its conclusion describes, but on the dynamic cutset
    /// probabilities.
    #[must_use]
    pub fn fussell_vesely(&self) -> Vec<(sdft_ft::NodeId, f64)> {
        use std::collections::HashMap;
        let mut with: HashMap<sdft_ft::NodeId, f64> = HashMap::new();
        for report in &self.cutsets {
            for &event in report.cutset.events() {
                *with.entry(event).or_insert(0.0) += report.probability;
            }
        }
        let mut out: Vec<(sdft_ft::NodeId, f64)> = with
            .into_iter()
            .map(|(event, sum)| {
                (
                    event,
                    if self.frequency > 0.0 {
                        sum / self.frequency
                    } else {
                        0.0
                    },
                )
            })
            .collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        out
    }

    /// Write the per-cutset records as CSV (header + one row per cutset,
    /// events separated by spaces, names resolved against `tree`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`.
    pub fn write_csv<W: std::io::Write>(
        &self,
        tree: &FaultTree,
        mut writer: W,
    ) -> std::io::Result<()> {
        // Event names may legally contain commas or quotes; RFC-4180
        // quote the cutset field when needed.
        fn csv_field(raw: &str) -> String {
            if raw.contains(',') || raw.contains('"') || raw.contains('\n') {
                format!("\"{}\"", raw.replace('"', "\"\""))
            } else {
                raw.to_owned()
            }
        }
        writeln!(
            writer,
            "cutset,probability,static_probability,cutset_dynamic,added_dynamic,\
             added_static,chain_states,used_general,quantification_us"
        )?;
        for report in &self.cutsets {
            let names: Vec<&str> = report
                .cutset
                .events()
                .iter()
                .map(|&e| tree.name(e))
                .collect();
            writeln!(
                writer,
                "{},{:e},{:e},{},{},{},{},{},{}",
                csv_field(&names.join(" ")),
                report.probability,
                report.static_probability,
                report.cutset_dynamic,
                report.added_dynamic,
                report.added_static,
                report.chain_states,
                report.used_general,
                report.quantification_time.as_micros(),
            )?;
        }
        Ok(())
    }
}

/// Run the complete analysis of §V: worst-case probabilities → static
/// translation → MOCUS → parallel per-cutset Markov quantification →
/// rare-event summation.
///
/// # Errors
///
/// Returns an error if the horizon is invalid, cutset generation exceeds
/// its budgets, or a per-cutset chain exceeds the state budget.
pub fn analyze(tree: &FaultTree, options: &AnalysisOptions) -> Result<AnalysisResult, CoreError> {
    let mut results = analyze_horizons(tree, options, &[options.horizon])?;
    Ok(results.pop().expect("one horizon, one result"))
}

/// Run the analysis for several horizons over *one* cutset list.
///
/// The expensive static phase — worst-case probabilities, translation and
/// MOCUS — runs once, at the **largest** horizon (worst-case
/// probabilities grow with the horizon, so that cutset list is a superset
/// of every smaller horizon's list and the cutoff stays conservative);
/// each horizon then re-quantifies the same list. This is the
/// re-evaluation workflow the paper's conclusion describes for
/// importance and uncertainty analyses, and the natural way to run its
/// horizon sweep (§VI-B, T5).
///
/// Results are returned in the order of `horizons`.
///
/// # Errors
///
/// Returns an error if `horizons` is empty or contains an invalid value,
/// cutset generation exceeds its budgets, or a per-cutset chain exceeds
/// the state budget.
pub fn analyze_horizons(
    tree: &FaultTree,
    options: &AnalysisOptions,
    horizons: &[f64],
) -> Result<Vec<AnalysisResult>, CoreError> {
    let start = Instant::now();
    let Some(&max_horizon) = horizons
        .iter()
        .max_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    else {
        return Err(CoreError::InvalidHorizon { horizon: f64::NAN });
    };
    for &h in horizons {
        if !h.is_finite() || h < 0.0 {
            return Err(CoreError::InvalidHorizon { horizon: h });
        }
    }

    let t0 = Instant::now();
    let probs = worst_case_probabilities(tree, max_horizon, options.epsilon)?;
    let worst_case_time = t0.elapsed();

    let t1 = Instant::now();
    let translated = translate(tree, &probs)?;
    let translation_time = t1.elapsed();

    let static_probs = EventProbabilities::from_static(&translated.tree)?;
    // MOCUS inherits the analysis-level thread count unless the caller
    // pinned one explicitly on the MOCUS options.
    let mut mocus_options = options.mocus;
    if mocus_options.threads == 0 {
        mocus_options.threads = options.threads;
    }

    let ctx = FtcContext::new(tree)?;
    // Per-horizon worst-case probabilities (the REA comparator).
    let probs_per_horizon: Vec<EventProbabilities> = horizons
        .iter()
        .map(|&h| {
            if h == max_horizon {
                Ok(probs.clone())
            } else {
                worst_case_probabilities(tree, h, options.epsilon)
            }
        })
        .collect::<Result<_, _>>()?;

    let backend: Box<dyn CutsetBackend> = match options.backend {
        Backend::Mocus => Box::new(MocusBackend {
            options: mocus_options,
        }),
        Backend::Bdd => Box::new(BddBackend {
            mocus_options,
            bdd_options: ModularBddOptions::default(),
        }),
    };
    // Probability assignments over FT̄ for the exact-probability probe,
    // one per horizon: the translated tree carries the max-horizon
    // worst-case probabilities, so remap each basic event to its own
    // horizon's worst case. Only the BDD backend answers the probe.
    let exact_probe: Vec<EventProbabilities> = if options.backend == Backend::Bdd {
        probs_per_horizon
            .iter()
            .map(|horizon_probs| {
                let mut probe = static_probs.clone();
                for event in tree.basic_events() {
                    probe.set(translated.from_original[&event], horizon_probs.get(event))?;
                }
                Ok(probe)
            })
            .collect::<Result<_, CoreError>>()?
    } else {
        Vec::new()
    };

    // The generation→minimization→quantification middle, either fused
    // (streaming engine) or phase by phase (batch). Both produce the
    // per-horizon reports in canonical cutset order plus identical
    // deterministic statistics.
    let phase = if options.streaming {
        let engine = crate::engine::run_streaming(
            tree,
            &translated,
            &static_probs,
            backend.as_ref(),
            &exact_probe,
            horizons,
            options,
            &probs_per_horizon,
            &ctx,
        )?;
        PhaseOutput {
            per_horizon_reports: engine.per_horizon,
            cache_stats: engine.cache_stats,
            kernel_usage: engine.kernel_usage,
            gen_stats: engine.gen_stats,
            subsumption_comparisons: engine.subsumption_comparisons,
            peak_pending_cutsets: engine.peak_pending_cutsets,
            peak_inflight_models: engine.peak_inflight_models,
            mcs_time: engine.generation_span,
            quantification_time: engine.quantification_span,
            stream_overlap: engine.overlap,
            generation_busy: engine.generation_span,
            filter_busy: engine.filter_busy,
            quant_busy: engine.quant_busy,
            filter_shards: engine.filter_shards,
            filter_fallback_epochs: engine
                .filter_shard_stats
                .iter()
                .map(|s| s.fallback_epochs)
                .sum(),
            filter_shard_stats: engine.filter_shard_stats,
        }
    } else {
        let t2 = Instant::now();
        let (mcs, gen_stats) =
            backend.generate_batch(&translated.tree, &static_probs, &exact_probe)?;
        let cutsets = translated.cutsets_to_original(&mcs);
        let mcs_time = t2.elapsed();

        let t3 = Instant::now();
        let (per_horizon_reports, cache_stats, kernel_usage, quant_busy) =
            quantify_all_multi(tree, &ctx, &cutsets, horizons, options, &probs_per_horizon)?;
        let minimize_time = gen_stats.mocus.minimize_time;
        PhaseOutput {
            subsumption_comparisons: gen_stats.mocus.subsumption_comparisons,
            // Batch materializes every candidate before minimizing and
            // holds the whole minimal list through quantification.
            peak_pending_cutsets: usize::try_from(gen_stats.mocus.cutset_candidates)
                .unwrap_or(usize::MAX),
            peak_inflight_models: cutsets.len(),
            per_horizon_reports,
            cache_stats,
            kernel_usage,
            gen_stats,
            mcs_time,
            quantification_time: t3.elapsed(),
            stream_overlap: Duration::ZERO,
            // Attribute the one-pass minimize to the filter stage so
            // batch and streaming filter costs compare directly; the
            // rest of the generation phase is enumeration.
            generation_busy: mcs_time.saturating_sub(minimize_time),
            filter_busy: minimize_time,
            quant_busy,
            filter_shards: 0,
            filter_fallback_epochs: 0,
            filter_shard_stats: Vec::new(),
        }
    };
    let PhaseOutput {
        per_horizon_reports,
        cache_stats,
        kernel_usage,
        gen_stats,
        subsumption_comparisons,
        peak_pending_cutsets,
        peak_inflight_models,
        mcs_time,
        quantification_time,
        stream_overlap,
        generation_busy,
        filter_busy,
        quant_busy,
        filter_shards,
        filter_fallback_epochs,
        filter_shard_stats,
    } = phase;
    let mocus_stats = &gen_stats.mocus;

    let mut results = Vec::with_capacity(horizons.len());
    for (h_index, (&horizon, reports)) in horizons.iter().zip(per_horizon_reports).enumerate() {
        let mut cutset_reports = reports;
        cutset_reports.sort_by(|a, b| {
            b.probability
                .partial_cmp(&a.probability)
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        // `Sum for f64` folds from -0.0; normalize for empty lists.
        let frequency = cutset_reports.iter().map(|r| r.probability).sum::<f64>() + 0.0;
        let static_rea = cutset_reports
            .iter()
            .map(|r| r.static_probability)
            .sum::<f64>()
            + 0.0;

        let mut stats = AnalysisStats {
            num_cutsets: cutset_reports.len(),
            distinct_model_classes: cache_stats.distinct_classes,
            cache_hits: cache_stats.hits,
            cache_misses: cache_stats.misses,
            kernel_solves: kernel_usage.stats.solves,
            kernel_steps: kernel_usage.stats.steps_taken,
            kernel_steps_saved: kernel_usage.stats.steps_saved,
            steady_state_solves: kernel_usage.stats.steady_state_solves,
            kernel_spmv_nonzeros: kernel_usage.stats.spmv_nonzeros,
            kernel_csr_reuses: kernel_usage.stats.csr_reuses,
            mocus_partials_processed: mocus_stats.partials_processed,
            mocus_partials_pruned: mocus_stats.partials_pruned,
            mocus_subsumption_comparisons: subsumption_comparisons,
            mocus_stolen_tasks: mocus_stats.stolen_tasks,
            peak_pending_cutsets,
            peak_inflight_models,
            mocus_peak_live_partials: mocus_stats.peak_live_partials,
            mocus_peak_partial_bytes: mocus_stats.peak_partial_bytes,
            mocus_peak_live_candidates: mocus_stats.peak_live_candidates,
            mocus_peak_candidate_bytes: mocus_stats.peak_candidate_bytes,
            filter_shards,
            filter_fallback_epochs,
            filter_shard_stats: filter_shard_stats.clone(),
            backend: options.backend,
            ..AnalysisStats::default()
        };
        if let Some(bdd) = &gen_stats.bdd {
            stats.bdd_modules = bdd.stats.modules;
            stats.bdd_total_nodes = bdd.stats.total_nodes;
            stats.bdd_max_module_nodes = bdd.stats.max_module_nodes;
            stats.bdd_per_module_nodes = bdd.stats.per_module.iter().map(|m| m.nodes).collect();
            stats.bdd_weighted_orders = bdd.stats.weighted_orders;
            stats.bdd_apply_hits = bdd.stats.apply_hits;
            stats.bdd_apply_misses = bdd.stats.apply_misses;
        }
        for r in &cutset_reports {
            if r.cutset_dynamic > 0 {
                stats.num_dynamic_cutsets += 1;
            }
            bump(&mut stats.histogram_cutset_dynamic, r.cutset_dynamic);
            bump(&mut stats.histogram_model_dynamic, r.model_dynamic());
            stats.max_chain_states = stats.max_chain_states.max(r.chain_states);
        }

        results.push(AnalysisResult {
            frequency,
            static_rea,
            exact_static: gen_stats.bdd.as_ref().map(|bdd| bdd.exact[h_index]),
            horizon,
            cutsets: cutset_reports,
            timings: Timings {
                worst_case: worst_case_time,
                translation: translation_time,
                mcs_generation: mcs_time,
                quantification: quantification_time,
                quantification_saved: cache_stats.time_saved,
                csr_build: kernel_usage.csr_build,
                stream_overlap,
                generation_busy,
                filter_busy,
                quant_busy,
                spmv: kernel_usage.spmv_time,
                total: start.elapsed(),
            },
            stats,
        });
    }
    Ok(results)
}

fn bump(histogram: &mut Vec<usize>, index: usize) {
    if histogram.len() <= index {
        histogram.resize(index + 1, 0);
    }
    histogram[index] += 1;
}

/// What the generation/minimization/quantification middle hands to the
/// per-horizon assembly, identical in shape for both engines.
struct PhaseOutput {
    /// One report vector per horizon, in canonical cutset order.
    per_horizon_reports: Vec<Vec<CutsetReport>>,
    cache_stats: CacheStats,
    kernel_usage: KernelUsage,
    gen_stats: GenerationStats,
    subsumption_comparisons: u64,
    peak_pending_cutsets: usize,
    peak_inflight_models: usize,
    mcs_time: Duration,
    quantification_time: Duration,
    stream_overlap: Duration,
    /// Generation busy seconds: the generation span when streaming, the
    /// enumeration minus the one-pass minimize for batch.
    generation_busy: Duration,
    /// Filter busy seconds: the filter stage (dispatcher plus shard
    /// workers) when streaming, the one-pass minimize for batch.
    filter_busy: Duration,
    /// Quantification busy seconds summed over workers.
    quant_busy: Duration,
    /// Streaming filter shard count (0 for batch).
    filter_shards: usize,
    /// Epochs minimized through the batch fallback, summed over shards.
    filter_fallback_epochs: u64,
    /// Per-shard filter counters (empty for batch).
    filter_shard_stats: Vec<FilterShardStats>,
}

/// Quantify one cutset against every horizon: build its `FT_C` model
/// once, solve it (through the cache when given), and expand into one
/// [`CutsetReport`] per horizon. Pure in the cutset — shared by the
/// batch fan-out and the streaming engine's quantification workers, and
/// the reason both produce bitwise-identical reports.
#[allow(clippy::too_many_arguments)]
pub(crate) fn quantify_cutset_at_horizons(
    tree: &FaultTree,
    ctx: &FtcContext,
    cutset: &Cutset,
    horizons: &[f64],
    qopts: &QuantifyOptions,
    cache: Option<&QuantCache>,
    probs_per_horizon: &[EventProbabilities],
    workspace: &mut SolverWorkspace,
) -> Result<(Vec<CutsetReport>, KernelUsage), CoreError> {
    let begin = Instant::now();
    let model = crate::ftc::build_ftc_with(tree, ctx, cutset, qopts.treatment)?;
    let build_share = begin.elapsed() / u32::try_from(horizons.len()).unwrap_or(1);
    let (quantified, _, usage) =
        crate::quantify::quantify_model_many_with(tree, &model, horizons, qopts, cache, workspace)?;
    let reports = quantified
        .into_iter()
        .zip(probs_per_horizon)
        .map(|(q, probs)| CutsetReport {
            probability: q.probability,
            static_probability: cutset.probability_with(|e| probs.get(e)),
            cutset_dynamic: q.cutset_dynamic,
            added_dynamic: q.added_dynamic,
            added_static: q.added_static,
            chain_states: q.chain_states,
            used_general: q.used_general,
            quantification_time: build_share + q.quantification_time,
            cutset: cutset.clone(),
        })
        .collect();
    Ok((reports, usage))
}

/// What [`quantify_all_multi`] hands back: per-horizon reports, cache
/// statistics, aggregated kernel usage, and worker busy seconds.
type QuantifyOutcome = (Vec<Vec<CutsetReport>>, CacheStats, KernelUsage, Duration);

/// Quantify every cutset at every horizon, fanning the work out over a
/// thread pool fed by a shared atomic work queue (quantifications are
/// independent; the paper notes this parallelism extends to
/// importance/uncertainty re-evaluations).
///
/// The work distribution is dedup-then-fan-out: every worker consults
/// the shared [`QuantCache`], so structurally identical cutset models
/// are uniformized exactly once (the first cutset of a class solves it,
/// the rest re-label the shared dynamic factors with their own static
/// factor). Each model's product chain is built once and shared across
/// all horizons through a single uniformization pass.
///
/// On the first error the queue aborts: workers stop claiming cutsets
/// at their next iteration and the smallest-index error is returned
/// (deterministic regardless of scheduling).
fn quantify_all_multi(
    tree: &FaultTree,
    ctx: &FtcContext,
    cutsets: &sdft_ft::CutsetList,
    horizons: &[f64],
    options: &AnalysisOptions,
    probs_per_horizon: &[EventProbabilities],
) -> Result<QuantifyOutcome, CoreError> {
    let threads = if options.threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        options.threads
    };
    let qopts = QuantifyOptions {
        horizon: horizons[0],
        epsilon: options.epsilon,
        max_states: options.max_chain_states,
        treatment: options.treatment,
        steady_state_detection: options.steady_state_detection,
    };
    let cache = options.cache.then(QuantCache::new);
    let work: Vec<&Cutset> = cutsets.iter().collect();

    // One result per (cutset, horizon). Model construction is shared by
    // every horizon and split evenly; the solve cost is attributed per
    // horizon by the quantifier (zero on cache hits). Each worker owns
    // one kernel workspace, so solver buffers are allocated once per
    // thread rather than once per solve. Kernel usage is attributed to
    // the call that solved a class (zero on hits), so summing it over
    // workers is deterministic regardless of scheduling.
    let quantify_one = |cutset: &Cutset,
                        workspace: &mut SolverWorkspace|
     -> Result<(Vec<CutsetReport>, KernelUsage), CoreError> {
        quantify_cutset_at_horizons(
            tree,
            ctx,
            cutset,
            horizons,
            &qopts,
            cache.as_ref(),
            probs_per_horizon,
            workspace,
        )
    };

    let mut out: Vec<Vec<CutsetReport>> = (0..horizons.len())
        .map(|_| Vec::with_capacity(cutsets.len()))
        .collect();

    if threads <= 1 {
        let busy_begin = Instant::now();
        let mut workspace = SolverWorkspace::new();
        let mut total_usage = KernelUsage::default();
        for &cutset in &work {
            let (reports, usage) = quantify_one(cutset, &mut workspace)?;
            total_usage.absorb(usage);
            for (h, report) in reports.into_iter().enumerate() {
                out[h].push(report);
            }
        }
        let stats = cache.as_ref().map(QuantCache::stats).unwrap_or_default();
        return Ok((out, stats, total_usage, busy_begin.elapsed()));
    }

    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let (produced, total_usage, total_busy) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let next = &next;
            let abort = &abort;
            let work = &work;
            let quantify_one = &quantify_one;
            handles.push(scope.spawn(move || {
                let busy_begin = Instant::now();
                let mut workspace = SolverWorkspace::new();
                let mut local: Vec<(usize, Vec<CutsetReport>)> = Vec::new();
                let mut local_usage = KernelUsage::default();
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&cutset) = work.get(index) else {
                        break;
                    };
                    match quantify_one(cutset, &mut workspace) {
                        Ok((reports, usage)) => {
                            local_usage.absorb(usage);
                            local.push((index, reports));
                        }
                        Err(error) => {
                            // Stop the other workers at their next claim.
                            abort.store(true, Ordering::Relaxed);
                            return Err((index, error));
                        }
                    }
                }
                Ok((local, local_usage, busy_begin.elapsed()))
            }));
        }
        let mut produced: Vec<(usize, Vec<CutsetReport>)> = Vec::with_capacity(work.len());
        let mut total_usage = KernelUsage::default();
        let mut total_busy = Duration::ZERO;
        let mut first_error: Option<(usize, CoreError)> = None;
        for handle in handles {
            match handle.join().expect("worker does not panic") {
                Ok((local, local_usage, busy)) => {
                    produced.extend(local);
                    total_usage.absorb(local_usage);
                    total_busy += busy;
                }
                Err((index, error)) => {
                    if first_error.as_ref().is_none_or(|(i, _)| index < *i) {
                        first_error = Some((index, error));
                    }
                }
            }
        }
        match first_error {
            Some((_, error)) => Err(error),
            None => Ok((produced, total_usage, total_busy)),
        }
    })?;

    // Merge in cutset order so report order is deterministic.
    let mut produced = produced;
    produced.sort_unstable_by_key(|&(index, _)| index);
    for (_, reports) in produced {
        for (h, report) in reports.into_iter().enumerate() {
            out[h].push(report);
        }
    }
    let stats = cache.as_ref().map(QuantCache::stats).unwrap_or_default();
    Ok((out, stats, total_usage, total_busy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdft_ctmc::erlang;
    use sdft_ft::FaultTreeBuilder;

    fn example3() -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        let a = b.static_event("a", 3e-3).unwrap();
        let bb = b
            .dynamic_event("b", erlang::repairable(1, 1e-3, 0.05).unwrap())
            .unwrap();
        let c = b.static_event("c", 3e-3).unwrap();
        let d = b
            .triggered_event("d", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let e = b.static_event("e", 3e-6).unwrap();
        let p1 = b.or("pump1", [a, bb]).unwrap();
        let p2 = b.or("pump2", [c, d]).unwrap();
        let pumps = b.and("pumps", [p1, p2]).unwrap();
        let top = b.or("cooling", [pumps, e]).unwrap();
        b.trigger(p1, d).unwrap();
        b.top(top);
        b.build().unwrap()
    }

    #[test]
    fn analyzes_example3() {
        let t = example3();
        let result = analyze(&t, &AnalysisOptions::new(24.0)).unwrap();
        assert_eq!(result.stats.num_cutsets, 5);
        assert_eq!(result.stats.num_dynamic_cutsets, 3); // {b,c}, {a,d}, {b,d}
        assert!(result.frequency > 0.0);
        assert!(result.frequency <= result.static_rea);
        // Reports are sorted by probability.
        for pair in result.cutsets.windows(2) {
            assert!(pair[0].probability >= pair[1].probability);
        }
    }

    #[test]
    fn fully_static_tree_matches_rea() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 1e-3).unwrap();
        let y = b.static_event("y", 2e-3).unwrap();
        let g = b.and("g", [x, y]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        let result = analyze(&t, &AnalysisOptions::new(24.0)).unwrap();
        assert!((result.frequency - 2e-6).abs() < 1e-18);
        assert_eq!(result.frequency, result.static_rea);
        assert_eq!(result.stats.num_dynamic_cutsets, 0);
    }

    #[test]
    fn single_thread_and_parallel_agree() {
        let t = example3();
        let mut opts = AnalysisOptions::new(24.0);
        opts.threads = 1;
        let sequential = analyze(&t, &opts).unwrap();
        opts.threads = 4;
        let parallel = analyze(&t, &opts).unwrap();
        assert!((sequential.frequency - parallel.frequency).abs() < 1e-18);
        // Work-stealing counts and memory peaks vary with scheduling;
        // everything else is schedule-independent.
        assert_eq!(
            sequential.stats.clone().deterministic(),
            parallel.stats.clone().deterministic()
        );
    }

    #[test]
    fn horizon_monotonicity() {
        let t = example3();
        let f24 = analyze(&t, &AnalysisOptions::new(24.0)).unwrap().frequency;
        let f96 = analyze(&t, &AnalysisOptions::new(96.0)).unwrap().frequency;
        assert!(f96 > f24);
    }

    #[test]
    fn cutoff_drops_cutsets() {
        let t = example3();
        let mut opts = AnalysisOptions::new(24.0);
        opts.mocus = MocusOptions::with_cutoff(5e-6); // drops {e} at 3e-6
        let result = analyze(&t, &opts).unwrap();
        assert!(result.stats.num_cutsets < 5);
    }

    #[test]
    fn stats_histograms_are_consistent() {
        let t = example3();
        let result = analyze(&t, &AnalysisOptions::new(24.0)).unwrap();
        let total: usize = result.stats.histogram_cutset_dynamic.iter().sum();
        assert_eq!(total, result.stats.num_cutsets);
        let dynamic: usize = result.stats.histogram_cutset_dynamic.iter().skip(1).sum();
        assert_eq!(dynamic, result.stats.num_dynamic_cutsets);
        assert!(result.stats.avg_model_dynamic() >= 1.0);
    }

    #[test]
    fn rejects_invalid_horizon() {
        let t = example3();
        assert!(matches!(
            analyze(&t, &AnalysisOptions::new(f64::INFINITY)),
            Err(CoreError::InvalidHorizon { .. })
        ));
    }
}

#[cfg(test)]
mod horizon_tests {
    use super::*;
    use sdft_ctmc::erlang;
    use sdft_ft::FaultTreeBuilder;

    fn example3() -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        let a = b.static_event("a", 3e-3).unwrap();
        let bb = b
            .dynamic_event("b", erlang::repairable(1, 1e-3, 0.05).unwrap())
            .unwrap();
        let c = b.static_event("c", 3e-3).unwrap();
        let d = b
            .triggered_event("d", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let e = b.static_event("e", 3e-6).unwrap();
        let p1 = b.or("pump1", [a, bb]).unwrap();
        let p2 = b.or("pump2", [c, d]).unwrap();
        let pumps = b.and("pumps", [p1, p2]).unwrap();
        let top = b.or("cooling", [pumps, e]).unwrap();
        b.trigger(p1, d).unwrap();
        b.top(top);
        b.build().unwrap()
    }

    #[test]
    fn multi_horizon_matches_individual_runs() {
        let t = example3();
        let opts = AnalysisOptions::new(96.0);
        let swept = analyze_horizons(&t, &opts, &[24.0, 96.0]).unwrap();
        assert_eq!(swept.len(), 2);
        // The 96 h result is exactly analyze() at 96 h.
        let single = analyze(&t, &AnalysisOptions::new(96.0)).unwrap();
        assert!((swept[1].frequency - single.frequency).abs() < 1e-18);
        // The 24 h result quantifies the 96 h cutset list (a superset of
        // the 24 h list), so it can only match-or-exceed the plain run.
        let single24 = analyze(&t, &AnalysisOptions::new(24.0)).unwrap();
        assert!(swept[0].frequency >= single24.frequency - 1e-18);
        assert!(swept[0].stats.num_cutsets >= single24.stats.num_cutsets);
        // Monotone in the horizon.
        assert!(swept[1].frequency > swept[0].frequency);
    }

    #[test]
    fn horizon_order_is_preserved() {
        let t = example3();
        let opts = AnalysisOptions::new(96.0);
        let swept = analyze_horizons(&t, &opts, &[96.0, 24.0, 48.0]).unwrap();
        let horizons: Vec<f64> = swept.iter().map(|r| r.horizon).collect();
        assert_eq!(horizons, vec![96.0, 24.0, 48.0]);
    }

    #[test]
    fn rejects_empty_and_invalid_horizon_lists() {
        let t = example3();
        let opts = AnalysisOptions::new(24.0);
        assert!(matches!(
            analyze_horizons(&t, &opts, &[]),
            Err(CoreError::InvalidHorizon { .. })
        ));
        assert!(matches!(
            analyze_horizons(&t, &opts, &[24.0, -1.0]),
            Err(CoreError::InvalidHorizon { .. })
        ));
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use sdft_ctmc::erlang;
    use sdft_ft::FaultTreeBuilder;

    fn example3() -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        let a = b.static_event("a", 3e-3).unwrap();
        let bb = b
            .dynamic_event("b", erlang::repairable(1, 1e-3, 0.05).unwrap())
            .unwrap();
        let c = b.static_event("c", 3e-3).unwrap();
        let d = b
            .triggered_event("d", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let e = b.static_event("e", 3e-6).unwrap();
        let p1 = b.or("pump1", [a, bb]).unwrap();
        let p2 = b.or("pump2", [c, d]).unwrap();
        let pumps = b.and("pumps", [p1, p2]).unwrap();
        let top = b.or("cooling", [pumps, e]).unwrap();
        b.trigger(p1, d).unwrap();
        b.top(top);
        b.build().unwrap()
    }

    /// Four redundant lines whose pumps are structurally identical
    /// dynamic events: four dynamic cutsets, one model equivalence class.
    fn replicated_lines() -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        let mut lines = Vec::new();
        for i in 0..4 {
            let valve = b
                .static_event(&format!("valve{i}"), 1e-3 * (i as f64 + 1.0))
                .unwrap();
            let pump = b
                .dynamic_event(
                    &format!("pump{i}"),
                    erlang::repairable(1, 1e-3, 0.05).unwrap(),
                )
                .unwrap();
            lines.push(b.and(&format!("line{i}"), [valve, pump]).unwrap());
        }
        let top = b.or("plant", lines).unwrap();
        b.top(top);
        b.build().unwrap()
    }

    #[test]
    fn identical_models_are_uniformized_once() {
        let result = analyze(&replicated_lines(), &AnalysisOptions::new(24.0)).unwrap();
        assert_eq!(result.stats.num_dynamic_cutsets, 4);
        assert_eq!(result.stats.distinct_model_classes, 1);
        assert_eq!(result.stats.cache_misses, 1, "one uniformization pass");
        assert_eq!(result.stats.cache_hits, 3);
        assert!((result.stats.cache_hit_rate() - 0.75).abs() < 1e-12);
        // The shared dynamic factor is re-labelled per cutset with its
        // own static factor, so the probabilities still differ.
        let mut probabilities: Vec<f64> = result.cutsets.iter().map(|r| r.probability).collect();
        probabilities.dedup();
        assert_eq!(probabilities.len(), 4);
    }

    #[test]
    fn example3_has_three_model_classes() {
        // {b,c}, {a,d} and {b,d} quantify three structurally different
        // models — no dedup opportunity, and no false sharing either.
        let result = analyze(&example3(), &AnalysisOptions::new(24.0)).unwrap();
        assert_eq!(result.stats.num_dynamic_cutsets, 3);
        assert_eq!(result.stats.distinct_model_classes, 3);
        assert_eq!(result.stats.cache_misses, 3);
        assert_eq!(result.stats.cache_hits, 0);
    }

    #[test]
    fn disabling_the_cache_reports_no_classes() {
        let mut opts = AnalysisOptions::new(24.0);
        opts.cache = false;
        let result = analyze(&replicated_lines(), &opts).unwrap();
        assert_eq!(result.stats.distinct_model_classes, 0);
        assert_eq!(result.stats.cache_hits + result.stats.cache_misses, 0);
        assert_eq!(result.stats.cache_hit_rate(), 0.0);
        assert_eq!(result.timings.quantification_saved, Duration::ZERO);
    }

    #[test]
    fn cached_and_uncached_probabilities_are_bitwise_identical() {
        for tree in [replicated_lines(), example3()] {
            let mut opts = AnalysisOptions::new(96.0);
            let cached = analyze_horizons(&tree, &opts, &[24.0, 96.0]).unwrap();
            opts.cache = false;
            let uncached = analyze_horizons(&tree, &opts, &[24.0, 96.0]).unwrap();
            for (c, u) in cached.iter().zip(&uncached) {
                assert_eq!(c.frequency.to_bits(), u.frequency.to_bits());
                assert_eq!(c.static_rea.to_bits(), u.static_rea.to_bits());
                assert_eq!(c.cutsets.len(), u.cutsets.len());
                for (rc, ru) in c.cutsets.iter().zip(&u.cutsets) {
                    assert_eq!(rc.cutset.events(), ru.cutset.events());
                    assert_eq!(rc.probability.to_bits(), ru.probability.to_bits());
                    assert_eq!(rc.chain_states, ru.chain_states);
                }
            }
        }
    }

    #[test]
    fn sequential_and_parallel_cache_stats_agree() {
        let t = replicated_lines();
        let mut opts = AnalysisOptions::new(24.0);
        opts.threads = 1;
        let sequential = analyze(&t, &opts).unwrap();
        opts.threads = 4;
        let parallel = analyze(&t, &opts).unwrap();
        // Misses are one-per-class regardless of scheduling; only the
        // work distribution and memory peaks depend on it.
        assert_eq!(
            sequential.stats.clone().deterministic(),
            parallel.stats.clone().deterministic()
        );
        assert_eq!(sequential.frequency.to_bits(), parallel.frequency.to_bits());
    }
}

#[cfg(test)]
mod streaming_tests {
    use super::*;
    use sdft_ctmc::erlang;
    use sdft_ft::FaultTreeBuilder;

    fn example3() -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        let a = b.static_event("a", 3e-3).unwrap();
        let bb = b
            .dynamic_event("b", erlang::repairable(1, 1e-3, 0.05).unwrap())
            .unwrap();
        let c = b.static_event("c", 3e-3).unwrap();
        let d = b
            .triggered_event("d", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let e = b.static_event("e", 3e-6).unwrap();
        let p1 = b.or("pump1", [a, bb]).unwrap();
        let p2 = b.or("pump2", [c, d]).unwrap();
        let pumps = b.and("pumps", [p1, p2]).unwrap();
        let top = b.or("cooling", [pumps, e]).unwrap();
        b.trigger(p1, d).unwrap();
        b.top(top);
        b.build().unwrap()
    }

    /// Four redundant lines with structurally identical dynamic pumps —
    /// exercises the quantification cache under the streaming engine.
    fn replicated_lines() -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        let mut lines = Vec::new();
        for i in 0..4 {
            let valve = b
                .static_event(&format!("valve{i}"), 1e-3 * (i as f64 + 1.0))
                .unwrap();
            let pump = b
                .dynamic_event(
                    &format!("pump{i}"),
                    erlang::repairable(1, 1e-3, 0.05).unwrap(),
                )
                .unwrap();
            lines.push(b.and(&format!("line{i}"), [valve, pump]).unwrap());
        }
        let top = b.or("plant", lines).unwrap();
        b.top(top);
        b.build().unwrap()
    }

    #[test]
    fn streaming_and_batch_agree_bitwise() {
        for tree in [example3(), replicated_lines()] {
            let mut batch_opts = AnalysisOptions::new(96.0);
            batch_opts.streaming = false;
            batch_opts.threads = 1;
            let reference = analyze_horizons(&tree, &batch_opts, &[24.0, 96.0]).unwrap();
            for threads in [1, 2, 4] {
                let mut opts = AnalysisOptions::new(96.0);
                opts.streaming = true;
                opts.threads = threads;
                let streamed = analyze_horizons(&tree, &opts, &[24.0, 96.0]).unwrap();
                for (b, s) in reference.iter().zip(&streamed) {
                    assert_eq!(b.frequency.to_bits(), s.frequency.to_bits());
                    assert_eq!(b.static_rea.to_bits(), s.static_rea.to_bits());
                    assert_eq!(b.cutsets.len(), s.cutsets.len());
                    for (rb, rs) in b.cutsets.iter().zip(&s.cutsets) {
                        assert_eq!(rb.cutset.events(), rs.cutset.events());
                        assert_eq!(rb.probability.to_bits(), rs.probability.to_bits());
                        assert_eq!(
                            rb.static_probability.to_bits(),
                            rs.static_probability.to_bits()
                        );
                        assert_eq!(rb.chain_states, rs.chain_states);
                    }
                    assert_eq!(
                        b.stats.clone().deterministic(),
                        s.stats.clone().deterministic(),
                        "threads = {threads}"
                    );
                }
            }
        }
    }

    /// Bitwise compare one streamed run against the batch reference.
    fn assert_streamed_matches(
        reference: &[AnalysisResult],
        streamed: &[AnalysisResult],
        label: &str,
    ) {
        for (b, s) in reference.iter().zip(streamed) {
            assert_eq!(b.frequency.to_bits(), s.frequency.to_bits(), "{label}");
            assert_eq!(b.cutsets.len(), s.cutsets.len(), "{label}");
            for (rb, rs) in b.cutsets.iter().zip(&s.cutsets) {
                assert_eq!(rb.cutset.events(), rs.cutset.events(), "{label}");
                assert_eq!(
                    rb.probability.to_bits(),
                    rs.probability.to_bits(),
                    "{label}"
                );
            }
            assert_eq!(
                b.stats.clone().deterministic(),
                s.stats.clone().deterministic(),
                "{label}"
            );
        }
    }

    #[test]
    fn sharded_filter_matches_batch_for_every_shard_and_thread_count() {
        for tree in [example3(), replicated_lines()] {
            let mut batch_opts = AnalysisOptions::new(96.0);
            batch_opts.streaming = false;
            batch_opts.threads = 1;
            let reference = analyze_horizons(&tree, &batch_opts, &[24.0, 96.0]).unwrap();
            for shards in [1, 2, 4, 8] {
                for threads in [1, 2, 4, 8] {
                    let mut opts = AnalysisOptions::new(96.0);
                    opts.streaming = true;
                    opts.threads = threads;
                    opts.filter_shards = shards;
                    let streamed = analyze_horizons(&tree, &opts, &[24.0, 96.0]).unwrap();
                    assert_eq!(streamed[0].stats.filter_shards, shards);
                    assert_eq!(streamed[0].stats.filter_shard_stats.len(), shards);
                    assert_streamed_matches(
                        &reference,
                        &streamed,
                        &format!("shards = {shards}, threads = {threads}"),
                    );
                }
            }
        }
    }

    #[test]
    fn fallback_modes_do_not_change_released_cutsets() {
        let tree = replicated_lines();
        let mut batch_opts = AnalysisOptions::new(24.0);
        batch_opts.streaming = false;
        batch_opts.threads = 1;
        let reference = analyze_horizons(&tree, &batch_opts, &[24.0]).unwrap();
        for fallback in [
            sdft_ft::FallbackMode::Adaptive,
            sdft_ft::FallbackMode::Always,
            sdft_ft::FallbackMode::Never,
        ] {
            for shards in [1, 4] {
                let mut opts = AnalysisOptions::new(24.0);
                opts.streaming = true;
                opts.threads = 2;
                opts.filter_shards = shards;
                opts.filter_fallback = fallback;
                let streamed = analyze_horizons(&tree, &opts, &[24.0]).unwrap();
                assert_streamed_matches(
                    &reference,
                    &streamed,
                    &format!("fallback = {fallback}, shards = {shards}"),
                );
                if fallback == sdft_ft::FallbackMode::Always {
                    assert!(
                        streamed[0].stats.filter_fallback_epochs > 0,
                        "forced fallback must report fallback epochs"
                    );
                }
                if fallback == sdft_ft::FallbackMode::Never {
                    assert_eq!(streamed[0].stats.filter_fallback_epochs, 0);
                }
            }
        }
    }

    #[test]
    fn streaming_reports_bounded_residency() {
        let t = replicated_lines();
        let mut opts = AnalysisOptions::new(24.0);
        opts.streaming = true;
        let streamed = analyze(&t, &opts).unwrap();
        opts.streaming = false;
        let batch = analyze(&t, &opts).unwrap();
        // Batch residency equals the materialized totals: every
        // candidate lives until minimization, the whole minimal list
        // until quantification.
        assert_eq!(
            batch.stats.peak_pending_cutsets as u64,
            batch.stats.mocus_peak_live_candidates
        );
        assert_eq!(batch.stats.peak_inflight_models, batch.stats.num_cutsets);
        assert!(batch.stats.mocus_peak_live_candidates > 0);
        assert!(streamed.stats.peak_pending_cutsets > 0);
        assert!(streamed.stats.peak_inflight_models > 0);
        assert!(
            streamed.stats.peak_inflight_models <= batch.stats.peak_inflight_models,
            "streaming must not hold more models in flight than batch"
        );
        assert_eq!(batch.timings.stream_overlap, Duration::ZERO);
    }

    #[test]
    fn generation_budget_errors_propagate_through_all_stages() {
        let t = example3();
        for threads in [1, 4] {
            let mut opts = AnalysisOptions::new(24.0);
            opts.streaming = true;
            opts.threads = threads;
            opts.mocus.max_cutsets = 2;
            assert!(matches!(
                analyze(&t, &opts),
                Err(CoreError::Mocus(sdft_mocus::MocusError::TooManyCutsets {
                    limit: 2
                }))
            ));
            let mut opts = AnalysisOptions::new(24.0);
            opts.streaming = true;
            opts.threads = threads;
            opts.mocus.max_partials = 1;
            assert!(matches!(
                analyze(&t, &opts),
                Err(CoreError::Mocus(sdft_mocus::MocusError::TooManyPartials {
                    limit: 1
                }))
            ));
        }
    }

    #[test]
    fn quantification_errors_abort_the_pipeline_promptly() {
        let t = example3();
        for threads in [1, 4] {
            let mut opts = AnalysisOptions::new(24.0);
            opts.streaming = true;
            opts.threads = threads;
            opts.max_chain_states = 1;
            // Returning at all proves generation and filter drained and
            // joined (no deadlock on a full channel); the error kind
            // proves it came from the quantification stage.
            let error = analyze(&t, &opts).unwrap_err();
            assert!(
                matches!(error, CoreError::Product(_)),
                "expected a product chain error, got: {error}"
            );
            // The same failure under batch, for parity.
            opts.streaming = false;
            assert!(matches!(analyze(&t, &opts), Err(CoreError::Product(_))));
        }
    }

    #[test]
    fn quantification_errors_abort_the_sharded_filter_mid_epoch() {
        // Shard workers may be mid-compaction (or blocked on a reply
        // channel) when the abort lands; returning with the right error
        // proves the dispatcher unblocked and joined every shard.
        let t = example3();
        for fallback in [sdft_ft::FallbackMode::Always, sdft_ft::FallbackMode::Never] {
            let mut opts = AnalysisOptions::new(24.0);
            opts.streaming = true;
            opts.threads = 2;
            opts.filter_shards = 4;
            opts.filter_fallback = fallback;
            opts.max_chain_states = 1;
            let error = analyze(&t, &opts).unwrap_err();
            assert!(
                matches!(error, CoreError::Product(_)),
                "expected a product chain error, got: {error}"
            );
        }
    }
}

#[cfg(test)]
mod bdd_backend_tests {
    use super::*;
    use sdft_ctmc::erlang;
    use sdft_ft::FaultTreeBuilder;

    fn example3() -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        let a = b.static_event("a", 3e-3).unwrap();
        let bb = b
            .dynamic_event("b", erlang::repairable(1, 1e-3, 0.05).unwrap())
            .unwrap();
        let c = b.static_event("c", 3e-3).unwrap();
        let d = b
            .triggered_event("d", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let e = b.static_event("e", 3e-6).unwrap();
        let p1 = b.or("pump1", [a, bb]).unwrap();
        let p2 = b.or("pump2", [c, d]).unwrap();
        let pumps = b.and("pumps", [p1, p2]).unwrap();
        let top = b.or("cooling", [pumps, e]).unwrap();
        b.trigger(p1, d).unwrap();
        b.top(top);
        b.build().unwrap()
    }

    #[test]
    fn bdd_backend_matches_mocus_bitwise() {
        let t = example3();
        let mut mocus_opts = AnalysisOptions::new(96.0);
        mocus_opts.streaming = false;
        mocus_opts.threads = 1;
        let reference = analyze_horizons(&t, &mocus_opts, &[24.0, 96.0]).unwrap();
        for streaming in [false, true] {
            for threads in [1, 4] {
                let mut opts = AnalysisOptions::new(96.0);
                opts.backend = Backend::Bdd;
                opts.streaming = streaming;
                opts.threads = threads;
                let bdd = analyze_horizons(&t, &opts, &[24.0, 96.0]).unwrap();
                for (m, b) in reference.iter().zip(&bdd) {
                    assert_eq!(m.frequency.to_bits(), b.frequency.to_bits());
                    assert_eq!(m.static_rea.to_bits(), b.static_rea.to_bits());
                    assert_eq!(m.cutsets.len(), b.cutsets.len());
                    for (rm, rb) in m.cutsets.iter().zip(&b.cutsets) {
                        assert_eq!(rm.cutset.events(), rb.cutset.events());
                        assert_eq!(rm.probability.to_bits(), rb.probability.to_bits());
                    }
                    assert!(m.exact_static.is_none());
                    assert!(b.exact_static.is_some());
                }
            }
        }
    }

    #[test]
    fn bdd_exact_probability_is_deterministic_across_engines_and_threads() {
        let t = example3();
        let mut exacts: Vec<u64> = Vec::new();
        for streaming in [false, true] {
            for threads in [1, 2, 4] {
                let mut opts = AnalysisOptions::new(24.0);
                opts.backend = Backend::Bdd;
                opts.streaming = streaming;
                opts.threads = threads;
                let result = analyze(&t, &opts).unwrap();
                exacts.push(result.exact_static.unwrap().to_bits());
            }
        }
        assert!(
            exacts.windows(2).all(|w| w[0] == w[1]),
            "exacts: {exacts:?}"
        );
    }

    #[test]
    fn bdd_exact_probability_bounds_the_rea() {
        // The REA sums cutset probabilities, over-counting intersections:
        // for a coherent tree it can only exceed the exact probability.
        let t = example3();
        let mut opts = AnalysisOptions::new(24.0);
        opts.backend = Backend::Bdd;
        let result = analyze(&t, &opts).unwrap();
        let exact = result.exact_static.unwrap();
        assert!(exact > 0.0);
        assert!(exact <= result.static_rea);
        // Every single cutset's static probability is a lower bound.
        for report in &result.cutsets {
            assert!(report.static_probability <= exact + 1e-18);
        }
    }

    #[test]
    fn bdd_backend_reports_construction_stats() {
        let t = example3();
        let mut opts = AnalysisOptions::new(24.0);
        opts.backend = Backend::Bdd;
        let result = analyze(&t, &opts).unwrap();
        let stats = &result.stats;
        assert_eq!(stats.backend, Backend::Bdd);
        assert!(stats.bdd_modules >= 1);
        assert_eq!(stats.bdd_per_module_nodes.len(), stats.bdd_modules);
        assert_eq!(
            stats.bdd_per_module_nodes.iter().sum::<usize>(),
            stats.bdd_total_nodes
        );
        assert_eq!(
            stats.bdd_per_module_nodes.iter().copied().max().unwrap(),
            stats.bdd_max_module_nodes
        );
        assert!(stats.bdd_apply_misses > 0, "construction must apply");

        let mocus = analyze(&t, &AnalysisOptions::new(24.0)).unwrap();
        assert_eq!(mocus.stats.backend, Backend::Mocus);
        assert_eq!(mocus.stats.bdd_modules, 0);
        assert_eq!(mocus.stats.bdd_total_nodes, 0);
    }

    #[test]
    fn bdd_backend_honors_the_cutoff_like_mocus() {
        let t = example3();
        let mut opts = AnalysisOptions::new(24.0);
        opts.mocus = MocusOptions::with_cutoff(5e-6); // drops {e} at 3e-6
        let mocus = analyze(&t, &opts).unwrap();
        opts.backend = Backend::Bdd;
        let bdd = analyze(&t, &opts).unwrap();
        assert_eq!(mocus.stats.num_cutsets, bdd.stats.num_cutsets);
        assert_eq!(mocus.frequency.to_bits(), bdd.frequency.to_bits());
        // The exact probability is computed on the full diagram, before
        // the post-filter — the cutoff does not perturb it at all.
        let mut full_opts = AnalysisOptions::new(24.0);
        full_opts.backend = Backend::Bdd;
        let full = analyze(&t, &full_opts).unwrap();
        assert_eq!(
            bdd.exact_static.unwrap().to_bits(),
            full.exact_static.unwrap().to_bits()
        );
        assert!(full.stats.num_cutsets > bdd.stats.num_cutsets);
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;
    use sdft_ctmc::erlang;
    use sdft_ft::FaultTreeBuilder;

    #[test]
    fn csv_export_has_a_row_per_cutset() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 1e-3).unwrap();
        let y = b
            .dynamic_event("y", erlang::repairable(1, 1e-3, 0.05).unwrap())
            .unwrap();
        let g = b.and("g", [x, y]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        let result = analyze(&t, &AnalysisOptions::new(24.0)).unwrap();
        let mut buffer = Vec::new();
        result.write_csv(&t, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + result.stats.num_cutsets);
        assert!(lines[0].starts_with("cutset,probability"));
        assert!(lines[1].starts_with("x y,"));
        assert_eq!(lines[1].split(',').count(), 9);

        // Found in review: names may contain commas; the cutset field
        // must be quoted so columns stay aligned.
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("valve,stuck", 1e-3).unwrap();
        let g = b.and("g", [x]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        let result = analyze(&t, &AnalysisOptions::new(24.0)).unwrap();
        let mut buffer = Vec::new();
        result.write_csv(&t, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let row = text.lines().nth(1).unwrap();
        assert!(row.starts_with("\"valve,stuck\","), "row: {row}");
    }
}
