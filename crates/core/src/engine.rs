//! The staged streaming analysis engine (DESIGN.md §7).
//!
//! Batch analysis materializes every MOCUS candidate, minimizes the full
//! list, then quantifies it — peak memory is O(all candidates). The
//! engine instead fuses the three phases into a bounded pipeline:
//!
//! ```text
//! MOCUS workers ──GenMsg──▶ filter thread ──Cutset──▶ quant workers
//!  (generator)   (bounded)  (incremental    (bounded)  (FT_C models,
//!                 channel    subsumption     channel    shared cache,
//!                 of≤512-    per epoch)                 pooled kernel
//!                 batches)                              workspaces)
//! ```
//!
//! Backpressure: both channels are bounded, so a slow consumer stalls
//! the producer instead of letting candidates pile up. The watermark
//! rule making early release sound is the generator's epoch contract
//! ([`sdft_mocus::CandidateSink`]): an epoch's candidates can only
//! subsume each other, and `epoch_complete` arrives after the epoch's
//! last delivery — the filter minimizes each epoch independently and
//! releases its surviving cutsets the moment it completes.
//!
//! Results are bitwise-identical to the batch path for every thread
//! count: the candidate multiset is schedule-independent, minimal sets
//! of a multiset are unique, per-cutset quantification is a pure
//! function of the cutset (the [`QuantCache`] stores one canonical
//! solution per model class regardless of which member solved it), and
//! the final assembly re-sorts reports into the batch's canonical
//! (order, events) cutset order before the per-horizon summation.

use crate::backend::{CutsetBackend, GenError, GenerationStats};
use crate::canonical::{CacheStats, QuantCache};
use crate::error::CoreError;
use crate::ftc::FtcContext;
use crate::pipeline::{quantify_cutset_at_horizons, AnalysisOptions, CutsetReport};
use crate::quantify::{KernelUsage, QuantifyOptions};
use crate::translate::Translated;
use sdft_ctmc::WorkspacePool;
use sdft_ft::{Cutset, EventProbabilities, FaultTree, IncrementalMinimizer};
use sdft_mocus::{CandidateSink, MocusError};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Generator→filter channel capacity, in delivery batches (a batch
/// holds at most the generator's flush threshold of 512 candidates).
const GEN_CHANNEL_BATCHES: usize = 64;

/// Cutsets per filter→quantification delivery batch (one channel send
/// and one wakeup per batch instead of per cutset).
const QUANT_BATCH: usize = 256;

/// Filter→quantification channel capacity, in batches. Together with
/// [`QUANT_BATCH`] this bounds minimal cutsets awaiting quantification
/// to 4096.
const QUANT_CHANNEL_BATCHES: usize = 16;

/// What the engine hands back to the pipeline: per-horizon reports in
/// the batch path's canonical cutset order, plus per-stage statistics.
pub(crate) struct EngineOutput {
    /// One report vector per horizon, in canonical (order, events)
    /// cutset order — exactly the batch path's pre-sort order.
    pub(crate) per_horizon: Vec<Vec<CutsetReport>>,
    pub(crate) gen_stats: GenerationStats,
    /// Subset tests the incremental minimizers performed (the online
    /// arrival order makes this scheduling-dependent, unlike batch).
    pub(crate) subsumption_comparisons: u64,
    /// Peak cutsets resident in the filter stage across all epochs.
    pub(crate) peak_pending_cutsets: usize,
    /// Peak models enqueued-or-quantifying downstream of the filter.
    pub(crate) peak_inflight_models: usize,
    pub(crate) cache_stats: CacheStats,
    pub(crate) kernel_usage: KernelUsage,
    /// Wall-clock span of the generation stage.
    pub(crate) generation_span: Duration,
    /// Wall-clock span of the quantification stage (first cutset
    /// released to the last worker joining).
    pub(crate) quantification_span: Duration,
    /// Stage-seconds the generation and quantification spans overlapped
    /// (zero in a perfectly serial run; the pipeline's win).
    pub(crate) overlap: Duration,
    /// Time the filter thread spent working (not blocked on the
    /// generator channel).
    pub(crate) filter_busy: Duration,
    /// Time quantification workers spent solving models, summed over
    /// workers (not blocked on the filter channel).
    pub(crate) quant_busy: Duration,
}

/// A bounded MPMC channel on `Mutex` + `Condvar` (std only). `send`
/// blocks while full (backpressure), `recv` blocks while empty;
/// `close` ends the stream after draining, `abort` ends it immediately
/// and discards queued items (error propagation).
struct Channel<T> {
    state: Mutex<ChannelState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

struct ChannelState<T> {
    queue: VecDeque<T>,
    closed: bool,
    aborted: bool,
}

impl<T> Channel<T> {
    fn new(capacity: usize) -> Self {
        Channel {
            state: Mutex::new(ChannelState {
                queue: VecDeque::with_capacity(capacity),
                closed: false,
                aborted: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Returns `false` when the channel was aborted (the item is
    /// dropped); the caller should unwind.
    fn send(&self, item: T) -> bool {
        let mut state = self.state.lock().expect("channel poisoned");
        loop {
            if state.aborted {
                return false;
            }
            if state.queue.len() < self.capacity {
                break;
            }
            state = self.not_full.wait(state).expect("channel poisoned");
        }
        state.queue.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        true
    }

    /// `None` once the channel is closed and drained, or aborted.
    fn recv(&self) -> Option<T> {
        let mut state = self.state.lock().expect("channel poisoned");
        loop {
            if state.aborted {
                return None;
            }
            if let Some(item) = state.queue.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("channel poisoned");
        }
    }

    fn close(&self) {
        self.state.lock().expect("channel poisoned").closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    fn abort(&self) {
        let mut state = self.state.lock().expect("channel poisoned");
        state.aborted = true;
        state.queue.clear();
        drop(state);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

/// Generator-side messages: candidate batches and epoch watermarks.
enum GenMsg {
    Batch(u32, Vec<Cutset>),
    EpochComplete(u32),
}

/// Adapts the generator's [`CandidateSink`] to the bounded channel; a
/// failed send (pipeline aborted) stops generation promptly.
struct ChannelSink<'a> {
    channel: &'a Channel<GenMsg>,
    candidates: &'a AtomicU64,
}

impl CandidateSink for ChannelSink<'_> {
    fn deliver(&self, epoch: u32, batch: &mut Vec<Cutset>) -> bool {
        self.candidates
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.channel
            .send(GenMsg::Batch(epoch, std::mem::take(batch)))
    }

    fn epoch_complete(&self, epoch: u32) -> bool {
        self.channel.send(GenMsg::EpochComplete(epoch))
    }
}

struct FilterOutput {
    comparisons: u64,
    peak_pending: usize,
    first_release: Option<Instant>,
    /// Time spent processing messages (minimizing, releasing), i.e. not
    /// blocked waiting on the generator channel. Includes any
    /// backpressure wait while handing batches downstream.
    busy: Duration,
}

/// Live progress counters, shared by all stages. Updated with relaxed
/// increments whether or not a monitor is attached (batch-granular on
/// the generator side, per-model elsewhere — unmeasurable overhead).
#[derive(Default)]
struct Progress {
    candidates: AtomicU64,
    finalized: AtomicU64,
    quantified: AtomicU64,
}

/// First-error slot: quantification failures race, the smallest
/// (order, events) cutset key wins so the reported error is
/// deterministic regardless of scheduling.
type ErrorSlot = Mutex<Option<(Cutset, CoreError)>>;

fn record_error(slot: &ErrorSlot, cutset: Cutset, error: CoreError) {
    let mut guard = slot.lock().expect("error slot poisoned");
    let replace = match &*guard {
        None => true,
        Some((held, _)) => (cutset.order(), cutset.events()) < (held.order(), held.events()),
    };
    if replace {
        *guard = Some((cutset, error));
    }
}

/// The filter stage: one thread feeding per-epoch incremental
/// minimizers and releasing each epoch's surviving cutsets (mapped back
/// to original ids) downstream the moment its watermark arrives.
#[allow(clippy::too_many_arguments)]
fn filter_stage(
    gen_rx: &Channel<GenMsg>,
    quant_tx: &Channel<Vec<Cutset>>,
    translated: &Translated,
    progress: &Progress,
    inflight: &AtomicUsize,
    peak_inflight: &AtomicUsize,
) -> FilterOutput {
    let mut minimizers: HashMap<u32, IncrementalMinimizer> = HashMap::new();
    let mut live = 0usize;
    let mut out = FilterOutput {
        comparisons: 0,
        peak_pending: 0,
        first_release: None,
        busy: Duration::ZERO,
    };
    let release = |minimizer: IncrementalMinimizer, out: &mut FilterOutput| -> bool {
        out.comparisons += minimizer.comparisons();
        let sorted = minimizer.into_sorted();
        progress
            .finalized
            .fetch_add(sorted.len() as u64, Ordering::Relaxed);
        if out.first_release.is_none() && !sorted.is_empty() {
            out.first_release = Some(Instant::now());
        }
        let send_batch = |batch: Vec<Cutset>| -> bool {
            let n = batch.len();
            let now = inflight.fetch_add(n, Ordering::Relaxed) + n;
            peak_inflight.fetch_max(now, Ordering::Relaxed);
            if !quant_tx.send(batch) {
                inflight.fetch_sub(n, Ordering::Relaxed);
                return false;
            }
            true
        };
        let mut batch: Vec<Cutset> = Vec::with_capacity(QUANT_BATCH);
        for cutset in sorted {
            batch.push(translated.cutset_to_original(&cutset));
            if batch.len() == QUANT_BATCH
                && !send_batch(std::mem::replace(
                    &mut batch,
                    Vec::with_capacity(QUANT_BATCH),
                ))
            {
                return false;
            }
        }
        if !batch.is_empty() && !send_batch(batch) {
            return false;
        }
        true
    };
    while let Some(msg) = gen_rx.recv() {
        let work_begin = Instant::now();
        match msg {
            GenMsg::Batch(epoch, cutsets) => {
                let minimizer = minimizers.entry(epoch).or_default();
                for cutset in cutsets {
                    let before = minimizer.len();
                    minimizer.offer(cutset);
                    live = live - before + minimizer.len();
                    out.peak_pending = out.peak_pending.max(live);
                }
            }
            GenMsg::EpochComplete(epoch) => {
                // Epochs that never delivered a candidate have no
                // minimizer and nothing to release.
                let Some(minimizer) = minimizers.remove(&epoch) else {
                    out.busy += work_begin.elapsed();
                    continue;
                };
                live -= minimizer.len();
                if !release(minimizer, &mut out) {
                    out.busy += work_begin.elapsed();
                    return out;
                }
            }
        }
        out.busy += work_begin.elapsed();
    }
    // A successful generation completes every epoch before the channel
    // closes; leftovers only exist on the abort path, where results are
    // discarded — finalize them anyway (sorted by epoch) so the
    // counters stay meaningful.
    let drain_begin = Instant::now();
    let mut rest: Vec<(u32, IncrementalMinimizer)> = minimizers.into_iter().collect();
    rest.sort_unstable_by_key(|&(epoch, _)| epoch);
    for (_, minimizer) in rest {
        if !release(minimizer, &mut out) {
            out.busy += drain_begin.elapsed();
            return out;
        }
    }
    quant_tx.close();
    out.busy += drain_begin.elapsed();
    out
}

/// One quantification worker: drain cutsets, build and solve their
/// models against all horizons, abort the whole pipeline on error.
#[allow(clippy::too_many_arguments)]
fn quant_stage(
    quant_rx: &Channel<Vec<Cutset>>,
    gen_tx: &Channel<GenMsg>,
    tree: &FaultTree,
    ctx: &FtcContext,
    horizons: &[f64],
    qopts: &QuantifyOptions,
    cache: Option<&QuantCache>,
    probs_per_horizon: &[EventProbabilities],
    pool: &WorkspacePool,
    progress: &Progress,
    inflight: &AtomicUsize,
    errors: &ErrorSlot,
) -> (Vec<Vec<CutsetReport>>, KernelUsage, Duration) {
    let mut workspace = pool.acquire();
    let mut local: Vec<Vec<CutsetReport>> = Vec::new();
    let mut usage = KernelUsage::default();
    let mut busy = Duration::ZERO;
    'drain: while let Some(batch) = quant_rx.recv() {
        let work_begin = Instant::now();
        for cutset in batch {
            let quantified = quantify_cutset_at_horizons(
                tree,
                ctx,
                &cutset,
                horizons,
                qopts,
                cache,
                probs_per_horizon,
                &mut workspace,
            );
            inflight.fetch_sub(1, Ordering::Relaxed);
            match quantified {
                Ok((reports, u)) => {
                    usage.absorb(u);
                    local.push(reports);
                    progress.quantified.fetch_add(1, Ordering::Relaxed);
                }
                Err(error) => {
                    record_error(errors, cutset, error);
                    // Stall everything upstream: the generator's next
                    // send fails, the filter's next recv/send fails.
                    quant_rx.abort();
                    gen_tx.abort();
                    busy += work_begin.elapsed();
                    break 'drain;
                }
            }
        }
        busy += work_begin.elapsed();
    }
    pool.release(workspace);
    (local, usage, busy)
}

/// Run the full streaming analysis: generation on the calling thread,
/// one filter thread, `threads` quantification workers, and (when
/// enabled) a progress monitor — all joined before returning.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_streaming(
    tree: &FaultTree,
    translated: &Translated,
    static_probs: &EventProbabilities,
    backend: &dyn CutsetBackend,
    exact_probe: &[EventProbabilities],
    horizons: &[f64],
    options: &AnalysisOptions,
    probs_per_horizon: &[EventProbabilities],
    ctx: &FtcContext,
) -> Result<EngineOutput, CoreError> {
    let threads = if options.threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        options.threads
    };
    let qopts = QuantifyOptions {
        horizon: horizons[0],
        epsilon: options.epsilon,
        max_states: options.max_chain_states,
        treatment: options.treatment,
        steady_state_detection: options.steady_state_detection,
    };
    let cache = options.cache.then(QuantCache::new);
    let pool = WorkspacePool::new();
    let gen_channel: Channel<GenMsg> = Channel::new(GEN_CHANNEL_BATCHES);
    let quant_channel: Channel<Vec<Cutset>> = Channel::new(QUANT_CHANNEL_BATCHES);
    let progress = Progress::default();
    let inflight = AtomicUsize::new(0);
    let peak_inflight = AtomicUsize::new(0);
    let errors: ErrorSlot = Mutex::new(None);
    let monitor_done = (Mutex::new(false), Condvar::new());

    let pipeline_start = Instant::now();
    let (gen_result, generation_span, filter_out, worker_outputs, quant_end) =
        std::thread::scope(|scope| {
            let filter_handle = scope.spawn(|| {
                filter_stage(
                    &gen_channel,
                    &quant_channel,
                    translated,
                    &progress,
                    &inflight,
                    &peak_inflight,
                )
            });
            let quant_handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        quant_stage(
                            &quant_channel,
                            &gen_channel,
                            tree,
                            ctx,
                            horizons,
                            &qopts,
                            cache.as_ref(),
                            probs_per_horizon,
                            &pool,
                            &progress,
                            &inflight,
                            &errors,
                        )
                    })
                })
                .collect();
            if let Some(interval) = options.progress {
                let monitor_done = &monitor_done;
                let progress = &progress;
                let cache = cache.as_ref();
                scope.spawn(move || {
                    let (lock, condvar) = monitor_done;
                    let mut done = lock.lock().expect("monitor flag poisoned");
                    loop {
                        let (guard, _) = condvar
                            .wait_timeout(done, interval)
                            .expect("monitor flag poisoned");
                        done = guard;
                        if *done {
                            break;
                        }
                        let stats = cache.map(QuantCache::stats).unwrap_or_default();
                        let consultations = stats.hits + stats.misses;
                        let rate = if consultations == 0 {
                            0.0
                        } else {
                            100.0 * stats.hits as f64 / consultations as f64
                        };
                        eprintln!(
                            "progress: {} candidates, {} cutsets finalized, \
                             {} models quantified, cache hit rate {rate:.1}%",
                            progress.candidates.load(Ordering::Relaxed),
                            progress.finalized.load(Ordering::Relaxed),
                            progress.quantified.load(Ordering::Relaxed),
                        );
                    }
                });
            }

            // Generation runs on the calling thread (its own worker pool
            // lives inside `stream_minimal_cutsets`).
            let sink = ChannelSink {
                channel: &gen_channel,
                candidates: &progress.candidates,
            };
            let gen_start = Instant::now();
            let gen_result =
                backend.generate_streaming(&translated.tree, static_probs, exact_probe, &sink);
            let generation_span = gen_start.elapsed();
            if gen_result.is_ok() {
                gen_channel.close();
            } else {
                // Real generation failure: tear the pipeline down. (On
                // Aborted the teardown already happened downstream.)
                gen_channel.abort();
                quant_channel.abort();
            }

            let filter_out = filter_handle.join().expect("filter thread does not panic");
            let worker_outputs: Vec<(Vec<Vec<CutsetReport>>, KernelUsage, Duration)> =
                quant_handles
                    .into_iter()
                    .map(|h| h.join().expect("quant worker does not panic"))
                    .collect();
            let quant_end = Instant::now();

            *monitor_done.0.lock().expect("monitor flag poisoned") = true;
            monitor_done.1.notify_all();

            (
                gen_result,
                generation_span,
                filter_out,
                worker_outputs,
                quant_end,
            )
        });
    let pipeline_span = pipeline_start.elapsed();

    // Error priority: a real generation error (budget, invalid cutoff)
    // outranks downstream failures; `Aborted` means the cause lives in
    // the error slot (deterministically the smallest failing cutset).
    let quant_error = errors
        .into_inner()
        .expect("error slot poisoned")
        .map(|(_, error)| error);
    let gen_stats = match gen_result {
        Ok(stats) => {
            if let Some(error) = quant_error {
                return Err(error);
            }
            stats
        }
        Err(GenError::Aborted) => {
            return Err(quant_error.unwrap_or_else(|| MocusError::Aborted.into()));
        }
        Err(GenError::Failed(error)) => return Err(error),
    };

    // Deterministic final assembly: reports arrive in scheduling order,
    // the canonical (order, events) sort restores the batch order (the
    // translation keeps basic-event ids monotone, so original-id order
    // equals translated-id order).
    let mut kernel_usage = KernelUsage::default();
    let mut quant_busy = Duration::ZERO;
    for (_, usage, busy) in &worker_outputs {
        kernel_usage.absorb(*usage);
        quant_busy += *busy;
    }
    let mut items: Vec<Vec<CutsetReport>> = worker_outputs
        .into_iter()
        .flat_map(|(local, _, _)| local)
        .collect();
    items.sort_unstable_by(|a, b| {
        let (ca, cb) = (&a[0].cutset, &b[0].cutset);
        ca.order()
            .cmp(&cb.order())
            .then_with(|| ca.events().cmp(cb.events()))
    });
    let mut per_horizon: Vec<Vec<CutsetReport>> = (0..horizons.len())
        .map(|_| Vec::with_capacity(items.len()))
        .collect();
    for reports in items {
        debug_assert_eq!(reports.len(), horizons.len());
        for (h, report) in reports.into_iter().enumerate() {
            per_horizon[h].push(report);
        }
    }

    let quantification_span = filter_out
        .first_release
        .map_or(Duration::ZERO, |first| quant_end.duration_since(first));
    Ok(EngineOutput {
        per_horizon,
        gen_stats,
        subsumption_comparisons: filter_out.comparisons,
        peak_pending_cutsets: filter_out.peak_pending,
        peak_inflight_models: peak_inflight.into_inner(),
        cache_stats: cache.as_ref().map(QuantCache::stats).unwrap_or_default(),
        kernel_usage,
        generation_span,
        quantification_span,
        overlap: (generation_span + quantification_span).saturating_sub(pipeline_span),
        filter_busy: filter_out.busy,
        quant_busy,
    })
}
