//! The staged streaming analysis engine (DESIGN.md §7).
//!
//! Batch analysis materializes every MOCUS candidate, minimizes the full
//! list, then quantifies it — peak memory is O(all candidates). The
//! engine instead fuses the three phases into a bounded pipeline:
//!
//! ```text
//! MOCUS workers ──GenMsg──▶ filter thread ──Cutset──▶ quant workers
//!  (generator)   (bounded)  (incremental    (bounded)  (FT_C models,
//!                 channel    subsumption     channel    shared cache,
//!                 of≤512-    per epoch)                 pooled kernel
//!                 batches)                              workspaces)
//! ```
//!
//! On multicore hosts the filter stage itself fans out: a dispatcher
//! routes each candidate to one of K shard minimizers by a
//! deterministic key of its event set ([`Cutset::shard_key`]), the
//! shards probe and compact independently, and at each epoch watermark
//! the dispatcher reconciles the K per-shard antichains with one batch
//! minimize before releasing — so the released sequence stays
//! bitwise-identical to the single-minimizer (and batch) result for
//! every shard and thread count.
//!
//! On a single-worker budget (`threads <= 1`) the quantification stage
//! fuses into the filter thread instead: no quant workers are spawned
//! and the filter quantifies each released cutset inline, cache-warm,
//! saving a channel hop and a thread on hosts where the stages could
//! never overlap anyway.
//!
//! On a host with a single core the pipeline collapses further to zero
//! extra threads: the generator drives the filter core directly through
//! its sink callbacks, and released cutsets — already final — are
//! buffered and quantified in one clean phase after generation ends.
//! Phased execution on one core recovers batch's cache and allocator
//! locality while the filter still bounds pending-candidate residency;
//! the threads only exist where they can actually run in parallel.
//!
//! Backpressure: both channels are bounded, so a slow consumer stalls
//! the producer instead of letting candidates pile up. The watermark
//! rule making early release sound is the generator's epoch contract
//! ([`sdft_mocus::CandidateSink`]): an epoch's candidates can only
//! subsume each other, and `epoch_complete` arrives after the epoch's
//! last delivery — the filter minimizes each epoch independently and
//! releases its surviving cutsets the moment it completes.
//!
//! Results are bitwise-identical to the batch path for every thread
//! count: the candidate multiset is schedule-independent, minimal sets
//! of a multiset are unique, per-cutset quantification is a pure
//! function of the cutset (the [`QuantCache`] stores one canonical
//! solution per model class regardless of which member solved it), and
//! the final assembly re-sorts reports into the batch's canonical
//! (order, events) cutset order before the per-horizon summation.

use crate::backend::{CutsetBackend, GenError, GenerationStats};
use crate::canonical::{CacheStats, QuantCache};
use crate::error::CoreError;
use crate::ftc::FtcContext;
use crate::pipeline::{
    quantify_cutset_at_horizons, AnalysisOptions, CutsetReport, FilterShardStats,
};
use crate::quantify::{KernelUsage, QuantifyOptions};
use crate::translate::Translated;
use sdft_ctmc::{SolverWorkspace, WorkspacePool};
use sdft_ft::{
    Cutset, CutsetList, EventProbabilities, FallbackMode, FaultTree, FilterStats,
    IncrementalMinimizer,
};
use sdft_mocus::{CandidateSink, MocusError};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Generator→filter channel capacity, in delivery batches (a batch
/// holds at most the generator's flush threshold of 512 candidates).
const GEN_CHANNEL_BATCHES: usize = 64;

/// Dispatcher→shard channel capacity, in routed sub-batches.
const SHARD_CHANNEL_BATCHES: usize = 16;

/// Shard→dispatcher reply channel capacity, in finished epochs.
const SHARD_REPLY_EPOCHS: usize = 4;

/// Hard ceiling on the shard count (`AnalysisOptions::filter_shards`
/// beyond this is clamped — more shards than this only add threads).
const MAX_FILTER_SHARDS: usize = 64;

/// Cutsets per filter→quantification delivery batch (one channel send
/// and one wakeup per batch instead of per cutset).
const QUANT_BATCH: usize = 256;

/// Filter→quantification channel capacity, in batches. Together with
/// [`QUANT_BATCH`] this bounds minimal cutsets awaiting quantification
/// to 4096.
const QUANT_CHANNEL_BATCHES: usize = 16;

/// What the engine hands back to the pipeline: per-horizon reports in
/// the batch path's canonical cutset order, plus per-stage statistics.
pub(crate) struct EngineOutput {
    /// One report vector per horizon, in canonical (order, events)
    /// cutset order — exactly the batch path's pre-sort order.
    pub(crate) per_horizon: Vec<Vec<CutsetReport>>,
    pub(crate) gen_stats: GenerationStats,
    /// Subset tests the incremental minimizers performed (the online
    /// arrival order makes this scheduling-dependent, unlike batch).
    pub(crate) subsumption_comparisons: u64,
    /// Peak cutsets resident in the filter stage across all epochs.
    pub(crate) peak_pending_cutsets: usize,
    /// Peak models enqueued-or-quantifying downstream of the filter.
    pub(crate) peak_inflight_models: usize,
    pub(crate) cache_stats: CacheStats,
    pub(crate) kernel_usage: KernelUsage,
    /// Wall-clock span of the generation stage.
    pub(crate) generation_span: Duration,
    /// Wall-clock span of the quantification stage (first cutset
    /// released to the last worker joining).
    pub(crate) quantification_span: Duration,
    /// Stage-seconds the generation and quantification spans overlapped
    /// (zero in a perfectly serial run; the pipeline's win).
    pub(crate) overlap: Duration,
    /// Time the filter stage spent working (not blocked on the
    /// generator channel), summed over the dispatcher and every shard
    /// minimizer when the filter runs sharded.
    pub(crate) filter_busy: Duration,
    /// Time quantification workers spent solving models, summed over
    /// workers (not blocked on the filter channel).
    pub(crate) quant_busy: Duration,
    /// Shard minimizers the filter stage ran (1 = the inline
    /// single-minimizer path, no shard threads).
    pub(crate) filter_shards: usize,
    /// Per-shard filter counters, indexed by shard.
    pub(crate) filter_shard_stats: Vec<FilterShardStats>,
}

/// A bounded MPMC channel on `Mutex` + `Condvar` (std only). `send`
/// blocks while full (backpressure), `recv` blocks while empty;
/// `close` ends the stream after draining, `abort` ends it immediately
/// and discards queued items (error propagation).
struct Channel<T> {
    state: Mutex<ChannelState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

struct ChannelState<T> {
    queue: VecDeque<T>,
    closed: bool,
    aborted: bool,
}

impl<T> Channel<T> {
    fn new(capacity: usize) -> Self {
        Channel {
            state: Mutex::new(ChannelState {
                queue: VecDeque::with_capacity(capacity),
                closed: false,
                aborted: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Returns `false` when the channel was aborted (the item is
    /// dropped); the caller should unwind.
    fn send(&self, item: T) -> bool {
        let mut state = self.state.lock().expect("channel poisoned");
        loop {
            if state.aborted {
                return false;
            }
            if state.queue.len() < self.capacity {
                break;
            }
            state = self.not_full.wait(state).expect("channel poisoned");
        }
        state.queue.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        true
    }

    /// `None` once the channel is closed and drained, or aborted.
    fn recv(&self) -> Option<T> {
        let mut state = self.state.lock().expect("channel poisoned");
        loop {
            if state.aborted {
                return None;
            }
            if let Some(item) = state.queue.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("channel poisoned");
        }
    }

    fn close(&self) {
        self.state.lock().expect("channel poisoned").closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    fn abort(&self) {
        let mut state = self.state.lock().expect("channel poisoned");
        state.aborted = true;
        state.queue.clear();
        drop(state);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

/// Generator-side messages: candidate batches and epoch watermarks.
enum GenMsg {
    Batch(u32, Vec<Cutset>),
    EpochComplete(u32),
}

/// Adapts the generator's [`CandidateSink`] to the bounded channel; a
/// failed send (pipeline aborted) stops generation promptly.
struct ChannelSink<'a> {
    channel: &'a Channel<GenMsg>,
    candidates: &'a AtomicU64,
}

impl CandidateSink for ChannelSink<'_> {
    fn deliver(&self, epoch: u32, batch: &mut Vec<Cutset>) -> bool {
        self.candidates
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.channel
            .send(GenMsg::Batch(epoch, std::mem::take(batch)))
    }

    fn epoch_complete(&self, epoch: u32) -> bool {
        self.channel.send(GenMsg::EpochComplete(epoch))
    }
}

/// Dispatcher→shard messages: a shard's slice of one delivery batch,
/// and the epoch watermark requesting the shard's finished antichain.
enum ShardMsg {
    Batch(u32, Vec<Cutset>),
    Complete(u32),
}

/// A shard's answer to a watermark: the epoch, its minimal antichain in
/// canonical (order, events) order, and the epoch's filter counters.
type ShardReply = (u32, Vec<Cutset>, FilterStats);

/// Shard count and fallback policy of the filter stage, resolved from
/// [`AnalysisOptions`] by `run_streaming`.
struct FilterConfig {
    shards: usize,
    fallback: FallbackMode,
}

struct FilterOutput {
    comparisons: u64,
    peak_pending: usize,
    first_release: Option<Instant>,
    /// Time spent processing messages (minimizing, releasing), i.e. not
    /// blocked waiting on the generator channel; summed over the
    /// dispatcher and shard workers when sharded. Includes any
    /// backpressure wait while handing batches downstream.
    busy: Duration,
    /// Per-shard counters, aggregated over epochs.
    shard_stats: Vec<FilterShardStats>,
    /// Reports, kernel usage and busy time of the fused inline
    /// quantifier (`None` when dedicated workers were spawned).
    inline_quant: Option<(Vec<Vec<CutsetReport>>, KernelUsage, Duration)>,
}

/// Live progress counters, shared by all stages. Updated with relaxed
/// increments whether or not a monitor is attached (batch-granular on
/// the generator side, per-model elsewhere — unmeasurable overhead).
#[derive(Default)]
struct Progress {
    candidates: AtomicU64,
    finalized: AtomicU64,
    quantified: AtomicU64,
}

/// First-error slot: quantification failures race, the smallest
/// (order, events) cutset key wins so the reported error is
/// deterministic regardless of scheduling.
type ErrorSlot = Mutex<Option<(Cutset, CoreError)>>;

fn record_error(slot: &ErrorSlot, cutset: Cutset, error: CoreError) {
    let mut guard = slot.lock().expect("error slot poisoned");
    let replace = match &*guard {
        None => true,
        Some((held, _)) => (cutset.order(), cutset.events()) < (held.order(), held.events()),
    };
    if replace {
        *guard = Some((cutset, error));
    }
}

/// Everything a quantifier needs besides the cutset itself — shared by
/// the dedicated worker threads and the fused inline path.
struct QuantContext<'a> {
    tree: &'a FaultTree,
    ctx: &'a FtcContext,
    horizons: &'a [f64],
    qopts: &'a QuantifyOptions,
    cache: Option<&'a QuantCache>,
    probs_per_horizon: &'a [EventProbabilities],
    gen_tx: &'a Channel<GenMsg>,
    errors: &'a ErrorSlot,
}

/// Mutable state of the fused quantifier living on the filter thread:
/// one solver workspace plus the accumulated reports and counters a
/// dedicated worker would have returned from its join handle.
struct InlineQuant<'a> {
    qctx: &'a QuantContext<'a>,
    workspace: SolverWorkspace,
    local: Vec<Vec<CutsetReport>>,
    usage: KernelUsage,
    busy: Duration,
}

/// Where released cutsets go: the bounded channel feeding dedicated
/// quantification workers, or a fused quantifier invoked directly on
/// the filter thread. The fused path is chosen when the engine would
/// spawn exactly one worker — the handoff would only add context
/// switches and let released cutsets go cache-cold in the channel,
/// which measurably hurts single-core hosts.
enum ReleaseTarget<'a> {
    Channel(&'a Channel<Vec<Cutset>>),
    Inline(Box<RefCell<InlineQuant<'a>>>),
    /// Fully-inline single-core mode: released cutsets are final, so
    /// buffer them (translated) and quantify in one clean phase after
    /// generation ends. On one core interleaving quantification with
    /// generation buys no overlap but pays for it in allocator and
    /// cache phase-mixing — measured ~25% on the quantification stage;
    /// phased execution restores batch's locality while the filter
    /// keeps pending residency bounded.
    Deferred(RefCell<Vec<Cutset>>),
}

/// Hands a finished epoch's minimal cutsets downstream in
/// [`QUANT_BATCH`] chunks (or quantifies them on the spot when fused),
/// mapping ids back to the original tree and keeping the
/// inflight-model accounting.
struct Releaser<'a> {
    target: ReleaseTarget<'a>,
    translated: &'a Translated,
    progress: &'a Progress,
    inflight: &'a AtomicUsize,
    peak_inflight: &'a AtomicUsize,
}

impl Releaser<'_> {
    /// `false` when the pipeline was aborted mid-release (or, fused, a
    /// quantification failed); the caller should unwind.
    fn release(&self, sorted: Vec<Cutset>, out: &mut FilterOutput) -> bool {
        self.progress
            .finalized
            .fetch_add(sorted.len() as u64, Ordering::Relaxed);
        // Deferred mode buffers now and quantifies later, so the
        // quantification span starts at the deferred phase, not here.
        if out.first_release.is_none()
            && !sorted.is_empty()
            && !matches!(self.target, ReleaseTarget::Deferred(_))
        {
            out.first_release = Some(Instant::now());
        }
        match &self.target {
            ReleaseTarget::Channel(quant_tx) => {
                let send_batch = |batch: Vec<Cutset>| -> bool {
                    let n = batch.len();
                    let now = self.inflight.fetch_add(n, Ordering::Relaxed) + n;
                    self.peak_inflight.fetch_max(now, Ordering::Relaxed);
                    if !quant_tx.send(batch) {
                        self.inflight.fetch_sub(n, Ordering::Relaxed);
                        return false;
                    }
                    true
                };
                let mut batch: Vec<Cutset> = Vec::with_capacity(QUANT_BATCH);
                for cutset in sorted {
                    batch.push(self.translated.cutset_into_original(cutset));
                    if batch.len() == QUANT_BATCH
                        && !send_batch(std::mem::replace(
                            &mut batch,
                            Vec::with_capacity(QUANT_BATCH),
                        ))
                    {
                        return false;
                    }
                }
                if !batch.is_empty() && !send_batch(batch) {
                    return false;
                }
                true
            }
            ReleaseTarget::Inline(fused) => {
                let mut q = fused.borrow_mut();
                let begin = Instant::now();
                // The whole release counts as inflight until each model
                // resolves, so the peak stays the honest "models handed
                // to quantification at once".
                let n = sorted.len();
                let now = self.inflight.fetch_add(n, Ordering::Relaxed) + n;
                self.peak_inflight.fetch_max(now, Ordering::Relaxed);
                for cutset in sorted {
                    let cutset = self.translated.cutset_into_original(cutset);
                    let quantified = quantify_cutset_at_horizons(
                        q.qctx.tree,
                        q.qctx.ctx,
                        &cutset,
                        q.qctx.horizons,
                        q.qctx.qopts,
                        q.qctx.cache,
                        q.qctx.probs_per_horizon,
                        &mut q.workspace,
                    );
                    self.inflight.fetch_sub(1, Ordering::Relaxed);
                    match quantified {
                        Ok((reports, usage)) => {
                            q.usage.absorb(usage);
                            q.local.push(reports);
                            self.progress.quantified.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(error) => {
                            record_error(q.qctx.errors, cutset, error);
                            // Stall the generator; the filter unwinds
                            // through the `false` return.
                            q.qctx.gen_tx.abort();
                            q.busy += begin.elapsed();
                            return false;
                        }
                    }
                }
                q.busy += begin.elapsed();
                true
            }
            ReleaseTarget::Deferred(buffer) => {
                let mut held = buffer.borrow_mut();
                held.reserve(sorted.len());
                for cutset in sorted {
                    held.push(self.translated.cutset_into_original(cutset));
                }
                // Inflight accounting happens when the deferred phase
                // actually hands the buffer to quantification.
                true
            }
        }
    }

    /// Signal end-of-stream downstream (no-op when fused: the reports
    /// already live on this thread).
    fn close(&self) {
        if let ReleaseTarget::Channel(quant_tx) = &self.target {
            quant_tx.close();
        }
    }
}

/// The filter stage: either one inline per-epoch minimizer (`shards <=
/// 1`) or a dispatcher routing candidates to `shards` shard threads by
/// [`Cutset::shard_key`] and reconciling their antichains at each epoch
/// watermark. Both paths release the same canonical (order, events)
/// cutset sequence downstream — sharding only changes who does the
/// subset probes, never the released multiset or its order.
#[allow(clippy::too_many_arguments)]
fn filter_stage(
    gen_rx: &Channel<GenMsg>,
    quant_tx: &Channel<Vec<Cutset>>,
    translated: &Translated,
    progress: &Progress,
    inflight: &AtomicUsize,
    peak_inflight: &AtomicUsize,
    config: &FilterConfig,
    shard_pending: &[AtomicUsize],
    fused: Option<&QuantContext<'_>>,
) -> FilterOutput {
    let target = match fused {
        Some(qctx) => ReleaseTarget::Inline(Box::new(RefCell::new(InlineQuant {
            qctx,
            workspace: SolverWorkspace::new(),
            local: Vec::new(),
            usage: KernelUsage::default(),
            busy: Duration::ZERO,
        }))),
        None => ReleaseTarget::Channel(quant_tx),
    };
    let releaser = Releaser {
        target,
        translated,
        progress,
        inflight,
        peak_inflight,
    };
    let mut out = FilterOutput {
        comparisons: 0,
        peak_pending: 0,
        first_release: None,
        busy: Duration::ZERO,
        shard_stats: vec![FilterShardStats::default(); config.shards.max(1)],
        inline_quant: None,
    };
    if config.shards <= 1 {
        filter_single(gen_rx, &releaser, config.fallback, shard_pending, &mut out);
    } else {
        filter_sharded(gen_rx, &releaser, config, shard_pending, &mut out);
    }
    if let ReleaseTarget::Inline(fused) = releaser.target {
        let q = fused.into_inner();
        // Quantification ran inside the timed filter regions; hand its
        // share back so the two busy counters stay disjoint stages.
        out.busy = out.busy.saturating_sub(q.busy);
        out.inline_quant = Some((q.local, q.usage, q.busy));
    }
    out
}

/// The single-minimizer filter core: per-epoch incremental minimizers,
/// each released the moment its watermark arrives. Driven either by
/// the filter thread's channel loop ([`filter_single`]) or directly by
/// the generator's sink callbacks ([`InlineFilterSink`]) when the
/// whole pipeline runs on one thread.
struct SingleFilter {
    minimizers: HashMap<u32, IncrementalMinimizer>,
    live: usize,
    fallback: FallbackMode,
}

impl SingleFilter {
    fn new(fallback: FallbackMode) -> Self {
        SingleFilter {
            minimizers: HashMap::new(),
            live: 0,
            fallback,
        }
    }

    /// Absorb one delivery batch into its epoch's minimizer.
    fn on_batch(
        &mut self,
        epoch: u32,
        cutsets: impl Iterator<Item = Cutset>,
        shard_pending: &[AtomicUsize],
        out: &mut FilterOutput,
    ) {
        let minimizer = self
            .minimizers
            .entry(epoch)
            .or_insert_with(|| IncrementalMinimizer::with_mode(self.fallback));
        for cutset in cutsets {
            let before = minimizer.len();
            minimizer.absorb(cutset);
            self.live = self.live - before + minimizer.len();
            out.peak_pending = out.peak_pending.max(self.live);
        }
        shard_pending[0].store(self.live, Ordering::Relaxed);
    }

    /// Epoch watermark: finish and release the epoch's antichain.
    /// Epochs that never delivered a candidate have no minimizer and
    /// nothing to release. `false` means the pipeline aborted.
    fn on_complete(
        &mut self,
        epoch: u32,
        releaser: &Releaser<'_>,
        shard_pending: &[AtomicUsize],
        out: &mut FilterOutput,
    ) -> bool {
        let Some(minimizer) = self.minimizers.remove(&epoch) else {
            return true;
        };
        self.live -= minimizer.len();
        shard_pending[0].store(self.live, Ordering::Relaxed);
        Self::finish_epoch(minimizer, releaser, out)
    }

    fn finish_epoch(
        minimizer: IncrementalMinimizer,
        releaser: &Releaser<'_>,
        out: &mut FilterOutput,
    ) -> bool {
        let (sorted, stats) = minimizer.finish();
        out.comparisons += stats.probes;
        out.shard_stats[0].absorb(stats);
        releaser.release(sorted, out)
    }

    /// A successful generation completes every epoch before it ends;
    /// leftovers only exist on the abort path, where results are
    /// discarded — finalize them anyway (sorted by epoch) so the
    /// counters stay meaningful. `release` gates the actual handoff:
    /// the inline driver skips it when generation already failed
    /// (there is no downstream to reject the work cheaply).
    fn drain(self, releaser: &Releaser<'_>, release: bool, out: &mut FilterOutput) {
        let mut rest: Vec<(u32, IncrementalMinimizer)> = self.minimizers.into_iter().collect();
        rest.sort_unstable_by_key(|&(epoch, _)| epoch);
        for (_, minimizer) in rest {
            if release {
                if !Self::finish_epoch(minimizer, releaser, out) {
                    return;
                }
            } else {
                let (_, stats) = minimizer.finish();
                out.comparisons += stats.probes;
                out.shard_stats[0].absorb(stats);
            }
        }
    }
}

/// Single-minimizer filter path on the dedicated filter thread: drain
/// the generator channel into a [`SingleFilter`]. No shard threads, no
/// reconciliation.
fn filter_single(
    gen_rx: &Channel<GenMsg>,
    releaser: &Releaser<'_>,
    fallback: FallbackMode,
    shard_pending: &[AtomicUsize],
    out: &mut FilterOutput,
) {
    let mut filter = SingleFilter::new(fallback);
    while let Some(msg) = gen_rx.recv() {
        let work_begin = Instant::now();
        match msg {
            GenMsg::Batch(epoch, cutsets) => {
                filter.on_batch(epoch, cutsets.into_iter(), shard_pending, out);
            }
            GenMsg::EpochComplete(epoch) => {
                if !filter.on_complete(epoch, releaser, shard_pending, out) {
                    out.busy += work_begin.elapsed();
                    return;
                }
            }
        }
        out.busy += work_begin.elapsed();
    }
    let drain_begin = Instant::now();
    filter.drain(releaser, true, out);
    releaser.close();
    out.busy += drain_begin.elapsed();
}

/// Fully-inline pipeline driver: on a single-core host with a
/// single-worker budget the generator calls the filter — and through
/// it the fused quantifier — directly via its sink callbacks. No
/// filter thread, no channels, no context switches or cross-thread
/// cache traffic; the time-sliced two-thread pipeline measurably loses
/// a few percent to batch on such hosts, and this closes it. The
/// mutex is uncontended with a single-threaded generator; it exists to
/// satisfy the `Sync` bound of [`CandidateSink`] (and serializes
/// correctly if a caller pins `mocus.threads > 1` on a 1-core host).
struct InlineFilterSink<'a> {
    state: Mutex<InlineFilterState<'a>>,
    shard_pending: &'a [AtomicUsize],
    candidates: &'a AtomicU64,
}

struct InlineFilterState<'a> {
    filter: SingleFilter,
    releaser: Releaser<'a>,
    out: FilterOutput,
    /// Set when a release failed (quantification error downstream);
    /// subsequent callbacks reject promptly so generation unwinds.
    failed: bool,
}

impl CandidateSink for InlineFilterSink<'_> {
    fn deliver(&self, epoch: u32, batch: &mut Vec<Cutset>) -> bool {
        self.candidates
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        let mut state = self.state.lock().expect("inline filter poisoned");
        if state.failed {
            return false;
        }
        let work_begin = Instant::now();
        let s = &mut *state;
        s.filter
            .on_batch(epoch, batch.drain(..), self.shard_pending, &mut s.out);
        s.out.busy += work_begin.elapsed();
        true
    }

    fn epoch_complete(&self, epoch: u32) -> bool {
        let mut state = self.state.lock().expect("inline filter poisoned");
        if state.failed {
            return false;
        }
        let work_begin = Instant::now();
        let s = &mut *state;
        let ok = s
            .filter
            .on_complete(epoch, &s.releaser, self.shard_pending, &mut s.out);
        s.out.busy += work_begin.elapsed();
        state.failed = !ok;
        ok
    }
}

/// Merge the per-shard antichains of one epoch into the epoch's minimal
/// cutsets. Each piece is internally minimal and canonically sorted;
/// when at most one is non-empty the union already is the answer.
/// Otherwise a cross-shard set can subsume another shard's set (the
/// shard key is order- and content-sensitive, so a subset and its
/// superset generally land on different shards) and a batch minimize
/// over the concatenation settles it. The result is identical to
/// minimizing the epoch's full candidate multiset in one place: every
/// truly minimal set survives its own shard (nothing in its shard beats
/// it, duplicates co-locate by key), so the union contains the answer,
/// and the reconcile pass removes exactly the cross-shard casualties.
fn reconcile(pieces: Vec<Vec<Cutset>>, threads: usize) -> (Vec<Cutset>, u64) {
    let non_empty = pieces.iter().filter(|p| !p.is_empty()).count();
    if non_empty <= 1 {
        let piece = pieces
            .into_iter()
            .find(|p| !p.is_empty())
            .unwrap_or_default();
        return (piece, 0);
    }
    let mut union: Vec<Cutset> = Vec::with_capacity(pieces.iter().map(Vec::len).sum());
    for piece in pieces {
        union.extend(piece);
    }
    let (minimal, comparisons) = CutsetList::from_vec(union).minimize_with_stats(threads);
    (minimal.into_iter().collect(), comparisons)
}

/// Sharded filter path: the filter thread becomes a dispatcher routing
/// each candidate to `shards` shard workers by [`Cutset::shard_key`];
/// at an epoch watermark it forwards the watermark to every shard,
/// collects the per-shard antichains in shard order, reconciles them
/// ([`reconcile`]) and releases the result. Determinism: the shard key
/// is a pure function of the event set, each shard's antichain is the
/// unique minimal antichain of its sub-multiset (arrival order is
/// irrelevant), and reconciliation is a canonical batch minimize — so
/// the released sequence is bitwise-identical for every shard count.
fn filter_sharded(
    gen_rx: &Channel<GenMsg>,
    releaser: &Releaser<'_>,
    config: &FilterConfig,
    shard_pending: &[AtomicUsize],
    out: &mut FilterOutput,
) {
    let k = config.shards;
    let inputs: Vec<Channel<ShardMsg>> = (0..k)
        .map(|_| Channel::new(SHARD_CHANNEL_BATCHES))
        .collect();
    let replies: Vec<Channel<ShardReply>> =
        (0..k).map(|_| Channel::new(SHARD_REPLY_EPOCHS)).collect();
    let pending = AtomicUsize::new(0);
    let peak_pending = AtomicUsize::new(0);
    let abort_all = || {
        for input in &inputs {
            input.abort();
        }
        for reply in &replies {
            reply.abort();
        }
    };
    let workers_busy = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..k)
            .map(|i| {
                let input = &inputs[i];
                let reply = &replies[i];
                let occupancy = &shard_pending[i];
                let pending = &pending;
                let peak_pending = &peak_pending;
                let fallback = config.fallback;
                std::thread::Builder::new()
                    .name(format!("sdft-shard-{i}"))
                    .spawn_scoped(scope, move || {
                        shard_worker(input, reply, fallback, occupancy, pending, peak_pending)
                    })
                    .expect("spawn shard worker")
            })
            .collect();

        // Collect every shard's antichain for `epoch` (shard order —
        // each worker replies to watermarks in input order, so the next
        // reply on shard i's channel is for this epoch), reconcile and
        // release. `false` aborts the dispatch loop.
        let settle_epoch = |epoch: u32, out: &mut FilterOutput| -> bool {
            let mut pieces: Vec<Vec<Cutset>> = Vec::with_capacity(k);
            for (i, reply) in replies.iter().enumerate() {
                let Some((e, sorted, stats)) = reply.recv() else {
                    return false;
                };
                debug_assert_eq!(e, epoch);
                out.shard_stats[i].absorb(stats);
                pieces.push(sorted);
            }
            let union_len: usize = pieces.iter().map(Vec::len).sum();
            peak_pending.fetch_max(
                pending.load(Ordering::Relaxed) + union_len,
                Ordering::Relaxed,
            );
            let (minimal, comparisons) = reconcile(pieces, k);
            out.comparisons += comparisons;
            releaser.release(minimal, out)
        };

        let dispatched = 'dispatch: {
            let mut route: Vec<Vec<Cutset>> = (0..k).map(|_| Vec::new()).collect();
            while let Some(msg) = gen_rx.recv() {
                let work_begin = Instant::now();
                match msg {
                    GenMsg::Batch(epoch, cutsets) => {
                        for cutset in cutsets {
                            route[cutset.shard_key(k)].push(cutset);
                        }
                        for (input, bucket) in inputs.iter().zip(route.iter_mut()) {
                            if !bucket.is_empty()
                                && !input.send(ShardMsg::Batch(epoch, std::mem::take(bucket)))
                            {
                                out.busy += work_begin.elapsed();
                                break 'dispatch false;
                            }
                        }
                    }
                    GenMsg::EpochComplete(epoch) => {
                        for input in &inputs {
                            if !input.send(ShardMsg::Complete(epoch)) {
                                out.busy += work_begin.elapsed();
                                break 'dispatch false;
                            }
                        }
                        if !settle_epoch(epoch, out) {
                            out.busy += work_begin.elapsed();
                            break 'dispatch false;
                        }
                    }
                }
                out.busy += work_begin.elapsed();
            }
            // Channel closed (or aborted): leftover epochs only exist
            // on the abort path. Close the shard inputs so the workers
            // flush whatever they still hold, then drain their replies
            // grouped by epoch and settle each in epoch order.
            let drain_begin = Instant::now();
            for input in &inputs {
                input.close();
            }
            let mut leftovers: HashMap<u32, Vec<Vec<Cutset>>> = HashMap::new();
            for (i, reply) in replies.iter().enumerate() {
                while let Some((epoch, sorted, stats)) = reply.recv() {
                    out.shard_stats[i].absorb(stats);
                    leftovers.entry(epoch).or_default().push(sorted);
                }
            }
            let mut rest: Vec<(u32, Vec<Vec<Cutset>>)> = leftovers.into_iter().collect();
            rest.sort_unstable_by_key(|&(epoch, _)| epoch);
            out.busy += drain_begin.elapsed();
            for (_, pieces) in rest {
                let settle_begin = Instant::now();
                let (minimal, comparisons) = reconcile(pieces, k);
                out.comparisons += comparisons;
                let ok = releaser.release(minimal, out);
                out.busy += settle_begin.elapsed();
                if !ok {
                    break 'dispatch false;
                }
            }
            releaser.close();
            true
        };
        if !dispatched {
            // Unblock any worker stuck sending a reply before joining.
            abort_all();
        }
        let mut busy = Duration::ZERO;
        for handle in handles {
            busy += handle.join().expect("shard worker does not panic");
        }
        busy
    });
    out.busy += workers_busy;
    out.peak_pending = out.peak_pending.max(peak_pending.into_inner());
}

/// One shard worker: per-epoch incremental minimizers over the
/// candidates routed to this shard, answering each watermark with the
/// epoch's finished antichain. Returns its busy time.
fn shard_worker(
    input: &Channel<ShardMsg>,
    reply: &Channel<ShardReply>,
    fallback: FallbackMode,
    occupancy: &AtomicUsize,
    pending: &AtomicUsize,
    peak_pending: &AtomicUsize,
) -> Duration {
    let mut minimizers: HashMap<u32, IncrementalMinimizer> = HashMap::new();
    let mut live = 0usize;
    let mut busy = Duration::ZERO;
    let track = |live: usize, delta_before: usize, delta_after: usize| {
        occupancy.store(live, Ordering::Relaxed);
        let total = if delta_after >= delta_before {
            let grow = delta_after - delta_before;
            pending.fetch_add(grow, Ordering::Relaxed) + grow
        } else {
            let shrink = delta_before - delta_after;
            pending
                .fetch_sub(shrink, Ordering::Relaxed)
                .saturating_sub(shrink)
        };
        peak_pending.fetch_max(total, Ordering::Relaxed);
    };
    while let Some(msg) = input.recv() {
        let work_begin = Instant::now();
        match msg {
            ShardMsg::Batch(epoch, cutsets) => {
                let minimizer = minimizers
                    .entry(epoch)
                    .or_insert_with(|| IncrementalMinimizer::with_mode(fallback));
                let before = minimizer.len();
                for cutset in cutsets {
                    minimizer.absorb(cutset);
                }
                let after = minimizer.len();
                live = live - before + after;
                track(live, before, after);
                busy += work_begin.elapsed();
            }
            ShardMsg::Complete(epoch) => {
                // A shard that saw no candidates for the epoch still
                // answers the watermark (with an empty antichain) so
                // the dispatcher's shard-order collection stays lined
                // up.
                let minimizer = minimizers.remove(&epoch).unwrap_or_default();
                let held = minimizer.len();
                live -= held;
                track(live, held, 0);
                let answer = minimizer.finish();
                busy += work_begin.elapsed();
                if !reply.send((epoch, answer.0, answer.1)) {
                    return busy;
                }
            }
        }
    }
    // Input closed with epochs still open: the pipeline is tearing
    // down. Flush them (sorted by epoch) so the dispatcher's drain sees
    // every epoch exactly once per shard.
    let mut rest: Vec<(u32, IncrementalMinimizer)> = minimizers.into_iter().collect();
    rest.sort_unstable_by_key(|&(epoch, _)| epoch);
    for (epoch, minimizer) in rest {
        let flush_begin = Instant::now();
        let (sorted, stats) = minimizer.finish();
        busy += flush_begin.elapsed();
        if !reply.send((epoch, sorted, stats)) {
            return busy;
        }
    }
    reply.close();
    busy
}

/// One quantification worker: drain cutsets, build and solve their
/// models against all horizons, abort the whole pipeline on error.
fn quant_stage(
    quant_rx: &Channel<Vec<Cutset>>,
    qctx: &QuantContext<'_>,
    pool: &WorkspacePool,
    progress: &Progress,
    inflight: &AtomicUsize,
) -> (Vec<Vec<CutsetReport>>, KernelUsage, Duration) {
    let mut workspace = pool.acquire();
    let mut local: Vec<Vec<CutsetReport>> = Vec::new();
    let mut usage = KernelUsage::default();
    let mut busy = Duration::ZERO;
    'drain: while let Some(batch) = quant_rx.recv() {
        let work_begin = Instant::now();
        for cutset in batch {
            let quantified = quantify_cutset_at_horizons(
                qctx.tree,
                qctx.ctx,
                &cutset,
                qctx.horizons,
                qctx.qopts,
                qctx.cache,
                qctx.probs_per_horizon,
                &mut workspace,
            );
            inflight.fetch_sub(1, Ordering::Relaxed);
            match quantified {
                Ok((reports, u)) => {
                    usage.absorb(u);
                    local.push(reports);
                    progress.quantified.fetch_add(1, Ordering::Relaxed);
                }
                Err(error) => {
                    record_error(qctx.errors, cutset, error);
                    // Stall everything upstream: the generator's next
                    // send fails, the filter's next recv/send fails.
                    quant_rx.abort();
                    qctx.gen_tx.abort();
                    busy += work_begin.elapsed();
                    break 'drain;
                }
            }
        }
        busy += work_begin.elapsed();
    }
    pool.release(workspace);
    (local, usage, busy)
}

/// Run the full streaming analysis: generation on the calling thread,
/// one filter thread, `threads` quantification workers, and (when
/// enabled) a progress monitor — all joined before returning.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_streaming(
    tree: &FaultTree,
    translated: &Translated,
    static_probs: &EventProbabilities,
    backend: &dyn CutsetBackend,
    exact_probe: &[EventProbabilities],
    horizons: &[f64],
    options: &AnalysisOptions,
    probs_per_horizon: &[EventProbabilities],
    ctx: &FtcContext,
) -> Result<EngineOutput, CoreError> {
    let threads = if options.threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        options.threads
    };
    let qopts = QuantifyOptions {
        horizon: horizons[0],
        epsilon: options.epsilon,
        max_states: options.max_chain_states,
        treatment: options.treatment,
        steady_state_detection: options.steady_state_detection,
    };
    // Shard-count policy: an explicit request wins (clamped); otherwise
    // stay inline on single-threaded hosts (shard threads would only
    // add handoffs) and cap the automatic count at 4 — subsumption
    // filtering saturates well before quantification does.
    let shards = if options.filter_shards != 0 {
        options.filter_shards.min(MAX_FILTER_SHARDS)
    } else if threads <= 1 {
        1
    } else {
        threads.min(4)
    };
    let filter_config = FilterConfig {
        shards,
        fallback: options.filter_fallback,
    };
    // With a single quantification worker the channel handoff buys no
    // parallelism among quantifiers — fuse quantification into the
    // filter thread instead: one thread less to schedule, and released
    // cutsets are solved while still cache-warm. Output is unaffected
    // (reports are canonically re-sorted at assembly either way).
    let fused = threads <= 1;
    // On a host with one core even the gen↔filter split buys nothing:
    // two threads time-slice the core and pay context switches plus
    // cache thrash between the generator's and the quantifier's
    // working sets. Collapse to zero extra threads — the generator
    // drives the filter core directly through its sink callbacks, and
    // quantification of the released (final) cutsets is deferred to one
    // clean phase after generation, recovering batch's phase locality.
    // Purely a scheduling choice: the same filter core and quantifier
    // run over the same sequences, so results stay bitwise-identical
    // to the threaded path.
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let fully_inline = fused && shards <= 1 && host_cores == 1;
    let shard_pending: Vec<AtomicUsize> = (0..shards.max(1)).map(|_| AtomicUsize::new(0)).collect();
    let cache = options.cache.then(QuantCache::new);
    let pool = WorkspacePool::new();
    let gen_channel: Channel<GenMsg> = Channel::new(GEN_CHANNEL_BATCHES);
    let quant_channel: Channel<Vec<Cutset>> = Channel::new(QUANT_CHANNEL_BATCHES);
    let progress = Progress::default();
    let inflight = AtomicUsize::new(0);
    let peak_inflight = AtomicUsize::new(0);
    let errors: ErrorSlot = Mutex::new(None);
    let monitor_done = (Mutex::new(false), Condvar::new());
    let qctx = QuantContext {
        tree,
        ctx,
        horizons,
        qopts: &qopts,
        cache: cache.as_ref(),
        probs_per_horizon,
        gen_tx: &gen_channel,
        errors: &errors,
    };

    let pipeline_start = Instant::now();
    let (gen_result, generation_span, filter_out, worker_outputs, quant_end) =
        std::thread::scope(|scope| {
            let filter_handle = (!fully_inline).then(|| {
                std::thread::Builder::new()
                    .name("sdft-filter".into())
                    .spawn_scoped(scope, || {
                        filter_stage(
                            &gen_channel,
                            &quant_channel,
                            translated,
                            &progress,
                            &inflight,
                            &peak_inflight,
                            &filter_config,
                            &shard_pending,
                            fused.then_some(&qctx),
                        )
                    })
                    .expect("spawn filter thread")
            });
            let quant_handles: Vec<_> = (0..if fused { 0 } else { threads })
                .map(|i| {
                    std::thread::Builder::new()
                        .name(format!("sdft-quant-{i}"))
                        .spawn_scoped(scope, || {
                            quant_stage(&quant_channel, &qctx, &pool, &progress, &inflight)
                        })
                        .expect("spawn quant worker")
                })
                .collect();
            if let Some(interval) = options.progress {
                let monitor_done = &monitor_done;
                let progress = &progress;
                let cache = cache.as_ref();
                let shard_pending = &shard_pending;
                scope.spawn(move || {
                    let (lock, condvar) = monitor_done;
                    let mut done = lock.lock().expect("monitor flag poisoned");
                    loop {
                        let (guard, _) = condvar
                            .wait_timeout(done, interval)
                            .expect("monitor flag poisoned");
                        done = guard;
                        if *done {
                            break;
                        }
                        let stats = cache.map(QuantCache::stats).unwrap_or_default();
                        let consultations = stats.hits + stats.misses;
                        let rate = if consultations == 0 {
                            0.0
                        } else {
                            100.0 * stats.hits as f64 / consultations as f64
                        };
                        let occupancy: Vec<usize> = shard_pending
                            .iter()
                            .map(|p| p.load(Ordering::Relaxed))
                            .collect();
                        eprintln!(
                            "progress: {} candidates, {} cutsets finalized, \
                             {} models quantified, cache hit rate {rate:.1}%, \
                             shard occupancy {occupancy:?}",
                            progress.candidates.load(Ordering::Relaxed),
                            progress.finalized.load(Ordering::Relaxed),
                            progress.quantified.load(Ordering::Relaxed),
                        );
                    }
                });
            }

            // Generation runs on the calling thread (its own worker pool
            // lives inside `stream_minimal_cutsets`), feeding either the
            // filter thread's channel or, fully inline, the filter core
            // directly.
            let inline_sink = fully_inline.then(|| InlineFilterSink {
                state: Mutex::new(InlineFilterState {
                    filter: SingleFilter::new(filter_config.fallback),
                    releaser: Releaser {
                        target: ReleaseTarget::Deferred(RefCell::new(Vec::new())),
                        translated,
                        progress: &progress,
                        inflight: &inflight,
                        peak_inflight: &peak_inflight,
                    },
                    out: FilterOutput {
                        comparisons: 0,
                        peak_pending: 0,
                        first_release: None,
                        busy: Duration::ZERO,
                        shard_stats: vec![FilterShardStats::default()],
                        inline_quant: None,
                    },
                    failed: false,
                }),
                shard_pending: &shard_pending,
                candidates: &progress.candidates,
            });
            let channel_sink = ChannelSink {
                channel: &gen_channel,
                candidates: &progress.candidates,
            };
            let sink: &dyn CandidateSink = match &inline_sink {
                Some(inline) => inline,
                None => &channel_sink,
            };
            let gen_start = Instant::now();
            let gen_result =
                backend.generate_streaming(&translated.tree, static_probs, exact_probe, sink);
            let mut generation_span = gen_start.elapsed();
            if gen_result.is_ok() {
                gen_channel.close();
            } else {
                // Real generation failure: tear the pipeline down. (On
                // Aborted the teardown already happened downstream.)
                gen_channel.abort();
                quant_channel.abort();
            }

            let mut filter_out = match filter_handle {
                Some(handle) => handle.join().expect("filter thread does not panic"),
                None => {
                    let state = inline_sink
                        .expect("inline sink exists without a filter thread")
                        .state
                        .into_inner()
                        .expect("inline filter poisoned");
                    let InlineFilterState {
                        filter,
                        releaser,
                        mut out,
                        ..
                    } = state;
                    // The sink's deliver/epoch-complete work ran inside
                    // the generation span; hand its share back so the
                    // stage busy counters stay disjoint (the drain below
                    // runs after generation and stays with the filter).
                    generation_span = generation_span.saturating_sub(out.busy);
                    let drain_begin = Instant::now();
                    filter.drain(&releaser, gen_result.is_ok(), &mut out);
                    out.busy += drain_begin.elapsed();
                    if let ReleaseTarget::Deferred(buffer) = releaser.target {
                        // The clean quantification phase over the
                        // buffered (already-translated) cutsets, in the
                        // same released order the threaded paths use.
                        let cutsets = buffer.into_inner();
                        let begin = Instant::now();
                        if !cutsets.is_empty() {
                            out.first_release = Some(begin);
                        }
                        // Compact: the event vectors were allocated by
                        // generation workers over the course of the run
                        // and are scattered across a churned heap;
                        // re-allocating them back-to-back makes the
                        // quantification scan sequential again (batch
                        // gets this for free from its translation copy).
                        // Clone first, drop the scattered originals en
                        // masse after, so the clones land in fresh
                        // contiguous space instead of the old blocks.
                        let compacted: Vec<Cutset> = cutsets.iter().map(Cutset::clone).collect();
                        drop(cutsets);
                        let cutsets = compacted;
                        let mut workspace = SolverWorkspace::new();
                        let mut local = Vec::with_capacity(cutsets.len());
                        let mut usage = KernelUsage::default();
                        let n = cutsets.len();
                        let now = inflight.fetch_add(n, Ordering::Relaxed) + n;
                        peak_inflight.fetch_max(now, Ordering::Relaxed);
                        if gen_result.is_ok() {
                            for cutset in cutsets {
                                let quantified = quantify_cutset_at_horizons(
                                    qctx.tree,
                                    qctx.ctx,
                                    &cutset,
                                    qctx.horizons,
                                    qctx.qopts,
                                    qctx.cache,
                                    qctx.probs_per_horizon,
                                    &mut workspace,
                                );
                                match quantified {
                                    Ok((reports, used)) => {
                                        usage.absorb(used);
                                        local.push(reports);
                                        progress.quantified.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Err(error) => {
                                        record_error(&errors, cutset, error);
                                        break;
                                    }
                                }
                            }
                        }
                        // No other stage shares the counter here; clear
                        // whatever an early error break left behind.
                        inflight.store(0, Ordering::Relaxed);
                        out.inline_quant = Some((local, usage, begin.elapsed()));
                    }
                    out
                }
            };
            let mut worker_outputs: Vec<(Vec<Vec<CutsetReport>>, KernelUsage, Duration)> =
                quant_handles
                    .into_iter()
                    .map(|h| h.join().expect("quant worker does not panic"))
                    .collect();
            if let Some(inline) = filter_out.inline_quant.take() {
                worker_outputs.push(inline);
            }
            let quant_end = Instant::now();

            *monitor_done.0.lock().expect("monitor flag poisoned") = true;
            monitor_done.1.notify_all();

            (
                gen_result,
                generation_span,
                filter_out,
                worker_outputs,
                quant_end,
            )
        });
    let pipeline_span = pipeline_start.elapsed();

    // Error priority: a real generation error (budget, invalid cutoff)
    // outranks downstream failures; `Aborted` means the cause lives in
    // the error slot (deterministically the smallest failing cutset).
    let quant_error = errors
        .into_inner()
        .expect("error slot poisoned")
        .map(|(_, error)| error);
    let gen_stats = match gen_result {
        Ok(stats) => {
            if let Some(error) = quant_error {
                return Err(error);
            }
            stats
        }
        Err(GenError::Aborted) => {
            return Err(quant_error.unwrap_or_else(|| MocusError::Aborted.into()));
        }
        Err(GenError::Failed(error)) => return Err(error),
    };

    // Deterministic final assembly: reports arrive in scheduling order,
    // the canonical (order, events) sort restores the batch order (the
    // translation keeps basic-event ids monotone, so original-id order
    // equals translated-id order).
    let mut kernel_usage = KernelUsage::default();
    let mut quant_busy = Duration::ZERO;
    for (_, usage, busy) in &worker_outputs {
        kernel_usage.absorb(*usage);
        quant_busy += *busy;
    }
    let mut items: Vec<Vec<CutsetReport>> = worker_outputs
        .into_iter()
        .flat_map(|(local, _, _)| local)
        .collect();
    items.sort_unstable_by(|a, b| {
        let (ca, cb) = (&a[0].cutset, &b[0].cutset);
        ca.order()
            .cmp(&cb.order())
            .then_with(|| ca.events().cmp(cb.events()))
    });
    let mut per_horizon: Vec<Vec<CutsetReport>> = (0..horizons.len())
        .map(|_| Vec::with_capacity(items.len()))
        .collect();
    for reports in items {
        debug_assert_eq!(reports.len(), horizons.len());
        for (h, report) in reports.into_iter().enumerate() {
            per_horizon[h].push(report);
        }
    }

    let quantification_span = filter_out
        .first_release
        .map_or(Duration::ZERO, |first| quant_end.duration_since(first));
    Ok(EngineOutput {
        per_horizon,
        gen_stats,
        subsumption_comparisons: filter_out.comparisons,
        peak_pending_cutsets: filter_out.peak_pending,
        peak_inflight_models: peak_inflight.into_inner(),
        cache_stats: cache.as_ref().map(QuantCache::stats).unwrap_or_default(),
        kernel_usage,
        generation_span,
        quantification_span,
        overlap: (generation_span + quantification_span).saturating_sub(pipeline_span),
        filter_busy: filter_out.busy,
        quant_busy,
        filter_shards: shards,
        filter_shard_stats: filter_out.shard_stats,
    })
}
