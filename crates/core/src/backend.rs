//! Cutset-generation backends for the analysis pipeline.
//!
//! Both the batch path ([`crate::analyze_horizons`]) and the streaming
//! engine are generic over *how* the minimal cutsets of the translated
//! static tree `FT̄` come to exist. The paper's MOCUS traversal (with its
//! probabilistic cutoff) is the default; the modular-BDD backend trades
//! generation time for **exactness**: it also computes the exact
//! top-event probability of `FT̄` — no cutoff, no rare-event
//! approximation — as a by-product of building one ROBDD per
//! independent module.
//!
//! Both backends emit the *same* minimal cutset list for the same
//! options (the BDD backend applies the cutoff and order limits as a
//! post-filter, which is sound: any superset of a below-cutoff cutset is
//! itself below the cutoff), so the per-cutset dynamic quantification
//! downstream is backend-agnostic and results stay bitwise-comparable.

use crate::error::CoreError;
use sdft_bdd::{CutsetLimits, ModularBdd, ModularBddOptions, ModularBddStats};
use sdft_ft::{Cutset, CutsetList, EventProbabilities, FaultTree};
use sdft_mocus::{
    minimal_cutsets_with_stats, stream_minimal_cutsets, CandidateSink, MocusError, MocusOptions,
    MocusStats,
};

/// Which cutset-generation backend drives the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// The paper's MOCUS traversal with the probabilistic cutoff
    /// (default). Scales to trees whose BDD would blow up, at the cost
    /// of the cutoff's truncation error.
    #[default]
    Mocus,
    /// One ROBDD per independent module of `FT̄`, composed through
    /// pseudo-variables. Produces the same minimal cutsets *plus* the
    /// exact top-event probability (no cutoff, no rare-event
    /// approximation).
    Bdd,
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "mocus" => Ok(Backend::Mocus),
            "bdd" => Ok(Backend::Bdd),
            other => Err(format!("unknown backend {other:?} (expected mocus or bdd)")),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Mocus => write!(f, "mocus"),
            Backend::Bdd => write!(f, "bdd"),
        }
    }
}

/// Backend-specific by-products of a BDD generation run.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BddGenStats {
    /// Modular construction statistics (node counts, ordering choices,
    /// apply-cache behavior).
    pub(crate) stats: ModularBddStats,
    /// The exact top-event probability of `FT̄`, one entry per probe
    /// probability assignment handed to the generation call (the
    /// pipeline probes once per horizon).
    pub(crate) exact: Vec<f64>,
}

/// What a generation run reports alongside the cutsets. The MOCUS
/// fields are zero for the BDD backend and vice versa; every populated
/// field is schedule-independent within its backend except where
/// [`crate::AnalysisStats::deterministic`] says otherwise.
#[derive(Debug, Clone, Default)]
pub(crate) struct GenerationStats {
    pub(crate) mocus: MocusStats,
    pub(crate) bdd: Option<BddGenStats>,
}

/// Streaming generation failure: either the sink asked the backend to
/// stop (the real cause lives downstream), or generation itself failed.
pub(crate) enum GenError {
    Aborted,
    Failed(CoreError),
}

/// A source of minimal cutsets of a static fault tree, pluggable under
/// both the batch and the streaming analysis flow.
///
/// `exact_probe` is a list of probability assignments over the tree's
/// basic events; backends that can answer exactly (BDD) evaluate the
/// exact top-event probability under each and report it through
/// [`GenerationStats`]. MOCUS ignores it.
pub(crate) trait CutsetBackend: Sync {
    /// Produce the complete minimal cutset list, materialized, in
    /// canonical (order, events) order.
    fn generate_batch(
        &self,
        tree: &FaultTree,
        probs: &EventProbabilities,
        exact_probe: &[EventProbabilities],
    ) -> Result<(CutsetList, GenerationStats), CoreError>;

    /// Stream the minimal cutsets into `sink` under the epoch/watermark
    /// contract of [`CandidateSink`].
    fn generate_streaming(
        &self,
        tree: &FaultTree,
        probs: &EventProbabilities,
        exact_probe: &[EventProbabilities],
        sink: &dyn CandidateSink,
    ) -> Result<GenerationStats, GenError>;
}

/// The default backend: the paper's MOCUS traversal.
pub(crate) struct MocusBackend {
    pub(crate) options: MocusOptions,
}

impl CutsetBackend for MocusBackend {
    fn generate_batch(
        &self,
        tree: &FaultTree,
        probs: &EventProbabilities,
        _exact_probe: &[EventProbabilities],
    ) -> Result<(CutsetList, GenerationStats), CoreError> {
        let (mcs, stats) = minimal_cutsets_with_stats(tree, probs, &self.options)?;
        Ok((
            mcs,
            GenerationStats {
                mocus: stats,
                bdd: None,
            },
        ))
    }

    fn generate_streaming(
        &self,
        tree: &FaultTree,
        probs: &EventProbabilities,
        _exact_probe: &[EventProbabilities],
        sink: &dyn CandidateSink,
    ) -> Result<GenerationStats, GenError> {
        match stream_minimal_cutsets(tree, probs, &self.options, sink) {
            Ok(stats) => Ok(GenerationStats {
                mocus: stats,
                bdd: None,
            }),
            Err(MocusError::Aborted) => Err(GenError::Aborted),
            Err(error) => Err(GenError::Failed(error.into())),
        }
    }
}

/// Cutsets per delivery batch under the streaming flow — matches the
/// MOCUS generator's flush threshold so downstream channel sizing
/// behaves identically for both backends.
const BDD_STREAM_BATCH: usize = 128;

/// The modular-BDD backend: exact probability plus minimal cutsets via
/// `minsol` on one diagram per module.
pub(crate) struct BddBackend {
    /// The analysis-level cutset limits, honored as a post-filter so the
    /// emitted list equals the MOCUS list for the same options.
    pub(crate) mocus_options: MocusOptions,
    pub(crate) bdd_options: ModularBddOptions,
}

impl BddBackend {
    /// The analysis limits as enumeration-pruning hints. The enumeration
    /// guarantees every surviving cutset is delivered but may hand back
    /// borderline extras (see [`CutsetLimits`]); [`BddBackend::keeps`]
    /// is the exact gate that restores MOCUS parity.
    fn limits(&self) -> CutsetLimits {
        CutsetLimits {
            cutoff: self.mocus_options.cutoff,
            max_order: self.mocus_options.max_order,
        }
    }

    /// Whether a cutset survives the cutoff and order limits. MOCUS
    /// keeps cutsets strictly above the cutoff; supersets of a dropped
    /// cutset can only have lower probability and higher order, so the
    /// post-filtered antichain equals the MOCUS-with-cutoff output.
    fn keeps(&self, cutset: &Cutset, probs: &EventProbabilities) -> bool {
        if let Some(max_order) = self.mocus_options.max_order {
            if cutset.order() > max_order {
                return false;
            }
        }
        if let Some(cutoff) = self.mocus_options.cutoff {
            if cutset.probability_with(|e| probs.get(e)) <= cutoff {
                return false;
            }
        }
        true
    }

    fn build(
        &self,
        tree: &FaultTree,
        exact_probe: &[EventProbabilities],
    ) -> Result<(ModularBdd, BddGenStats), CoreError> {
        let modular = ModularBdd::with_options(tree, &self.bdd_options)?;
        let exact = exact_probe
            .iter()
            .map(|p| modular.exact_probability(p))
            .collect();
        let stats = modular.stats();
        Ok((modular, BddGenStats { stats, exact }))
    }
}

impl CutsetBackend for BddBackend {
    fn generate_batch(
        &self,
        tree: &FaultTree,
        probs: &EventProbabilities,
        exact_probe: &[EventProbabilities],
    ) -> Result<(CutsetList, GenerationStats), CoreError> {
        let (mut modular, bdd_stats) = self.build(tree, exact_probe)?;
        let mut cutsets: Vec<Cutset> = Vec::new();
        modular
            .stream_minimal_cutsets_bounded(
                usize::MAX,
                |e| probs.get(e),
                &self.limits(),
                |batch| {
                    cutsets.extend(batch.drain(..).filter(|c| self.keeps(c, probs)));
                    true
                },
            )
            .map_err(CoreError::from)?;
        // Canonical (order, events) order — the same order the batch
        // MOCUS merge and the streaming engine's final assembly use, so
        // downstream results are backend- and engine-agnostic.
        cutsets.sort_unstable_by(|a, b| {
            a.order()
                .cmp(&b.order())
                .then_with(|| a.events().cmp(b.events()))
        });
        let mut list = CutsetList::new();
        let mut stats = GenerationStats {
            mocus: MocusStats::default(),
            bdd: Some(bdd_stats),
        };
        stats.mocus.cutset_candidates = cutsets.len() as u64;
        for c in cutsets {
            list.push(c);
        }
        Ok((list, stats))
    }

    fn generate_streaming(
        &self,
        tree: &FaultTree,
        probs: &EventProbabilities,
        exact_probe: &[EventProbabilities],
        sink: &dyn CandidateSink,
    ) -> Result<GenerationStats, GenError> {
        let (mut modular, bdd_stats) = match self.build(tree, exact_probe) {
            Ok(built) => built,
            Err(error) => return Err(GenError::Failed(error)),
        };
        // Minimality is established inside the backend — every nested
        // module is fully solved before the top module's solutions are
        // expanded — so each delivered batch is already an antichain and
        // forms its own immediately-complete epoch: batch completion is
        // the whole-module watermark, and the downstream minimizer's
        // per-epoch subsumption pass has nothing to remove.
        let mut epoch: u32 = 0;
        let mut delivered: u64 = 0;
        let mut filtered: Vec<Cutset> = Vec::with_capacity(BDD_STREAM_BATCH);
        let completed = modular
            .stream_minimal_cutsets_bounded(
                BDD_STREAM_BATCH,
                |e| probs.get(e),
                &self.limits(),
                |batch| {
                    filtered.extend(batch.drain(..).filter(|c| self.keeps(c, probs)));
                    if filtered.is_empty() {
                        return true;
                    }
                    delivered += filtered.len() as u64;
                    let ok = sink.deliver(epoch, &mut filtered) && sink.epoch_complete(epoch);
                    filtered.clear();
                    epoch += 1;
                    ok
                },
            )
            .map_err(|e| GenError::Failed(e.into()))?;
        if !completed {
            return Err(GenError::Aborted);
        }
        let mut stats = GenerationStats {
            mocus: MocusStats::default(),
            bdd: Some(bdd_stats),
        };
        stats.mocus.cutset_candidates = delivered;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parses_and_displays() {
        assert_eq!("mocus".parse::<Backend>().unwrap(), Backend::Mocus);
        assert_eq!("bdd".parse::<Backend>().unwrap(), Backend::Bdd);
        assert!("sat".parse::<Backend>().is_err());
        assert_eq!(Backend::Mocus.to_string(), "mocus");
        assert_eq!(Backend::Bdd.to_string(), "bdd");
        assert_eq!(Backend::default(), Backend::Mocus);
    }
}
