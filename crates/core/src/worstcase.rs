use crate::error::CoreError;
use sdft_ft::{Behavior, EventProbabilities, FaultTree, NodeId};

/// The worst-case probability that basic event `event` fails at least once
/// within `horizon` (§V-B2).
///
/// * Static events: their own failure probability.
/// * Always-on dynamic events: `Pr[reach F ≤ horizon]` on their chain.
/// * Triggered dynamic events: the supremum over all ways the event may be
///   triggered — attained, for the monotone degradation/repair chains this
///   workspace builds, by triggering at time zero and never untriggering
///   (the initial distribution is shifted by the `on` map and mode
///   switches are ignored afterwards). This is validated against the exact
///   product-chain semantics in this crate's tests.
///
/// # Errors
///
/// Returns an error if `event` is not a basic event or the horizon /
/// epsilon are invalid.
pub fn worst_case_probability(
    tree: &FaultTree,
    event: NodeId,
    horizon: f64,
    epsilon: f64,
) -> Result<f64, CoreError> {
    match tree.behavior(event) {
        Some(Behavior::Static { probability }) => Ok(*probability),
        Some(Behavior::Dynamic(chain)) => Ok(chain.reach_failed_probability(horizon, epsilon)?),
        Some(Behavior::Triggered(chain)) => {
            Ok(chain.worst_case_failure_probability(horizon, epsilon)?)
        }
        None => Err(CoreError::UnexpectedNode {
            name: tree.name(event).to_owned(),
            expected: "a basic event",
        }),
    }
}

/// Worst-case probabilities for all basic events of `tree` (the
/// probabilities of the translated static tree `FT̄`, §V-B2).
///
/// # Errors
///
/// Returns an error if the horizon or epsilon are invalid.
pub fn worst_case_probabilities(
    tree: &FaultTree,
    horizon: f64,
    epsilon: f64,
) -> Result<EventProbabilities, CoreError> {
    if !horizon.is_finite() || horizon < 0.0 {
        return Err(CoreError::InvalidHorizon { horizon });
    }
    // Statics first (zero placeholders for dynamics), then fill every
    // dynamic event so chain errors keep their own type.
    let mut probs = EventProbabilities::with_dynamic(tree, |_| Ok(0.0)).map_err(CoreError::Ft)?;
    for event in tree.dynamic_basic_events() {
        let p = worst_case_probability(tree, event, horizon, epsilon)?;
        probs.set(event, p).map_err(CoreError::Ft)?;
    }
    Ok(probs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdft_ctmc::erlang;
    use sdft_ft::FaultTreeBuilder;

    fn tree() -> (FaultTree, NodeId, NodeId, NodeId) {
        let mut b = FaultTreeBuilder::new();
        let s = b.static_event("s", 0.25).unwrap();
        let p = b
            .dynamic_event("p", erlang::repairable(1, 1e-3, 0.05).unwrap())
            .unwrap();
        let d = b
            .triggered_event("d", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let g = b.or("g", [s, p]).unwrap();
        let top = b.and("top", [g, d]).unwrap();
        b.trigger(g, d).unwrap();
        b.top(top);
        (b.build().unwrap(), s, p, d)
    }

    #[test]
    fn static_events_keep_their_probability() {
        let (t, s, _, _) = tree();
        assert_eq!(worst_case_probability(&t, s, 24.0, 1e-12).unwrap(), 0.25);
    }

    #[test]
    fn plain_dynamic_uses_reach_probability() {
        let (t, _, p, _) = tree();
        let got = worst_case_probability(&t, p, 24.0, 1e-12).unwrap();
        let expected = erlang::repairable(1, 1e-3, 0.05)
            .unwrap()
            .reach_failed_probability(24.0, 1e-12)
            .unwrap();
        assert!((got - expected).abs() < 1e-15);
    }

    #[test]
    fn triggered_dynamic_uses_triggered_at_zero() {
        let (t, _, _, d) = tree();
        let got = worst_case_probability(&t, d, 24.0, 1e-12).unwrap();
        let expected = erlang::spare(1e-3, 0.05)
            .unwrap()
            .worst_case_failure_probability(24.0, 1e-12)
            .unwrap();
        assert!((got - expected).abs() < 1e-15);
        // Triggered at zero dominates: the event cannot fail while off, so
        // any later triggering leaves less time to fail.
        assert!(got > 0.0 && got < 24.0 * 1e-3);
    }

    #[test]
    fn worst_case_dominates_actual_failure_probability() {
        // The actual probability that d ever fails (it is only triggered
        // after g fails) is below the worst case. Exact check via the
        // product chain of a tree whose top is just d failing.
        let mut b = FaultTreeBuilder::new();
        let s = b.static_event("s", 0.25).unwrap();
        let d = b
            .triggered_event("d", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let g = b.or("g", [s]).unwrap();
        let top = b.and("top", [g, d]).unwrap();
        b.trigger(g, d).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let d = t.node_by_name("d").unwrap();
        let worst = worst_case_probability(&t, d, 24.0, 1e-12).unwrap();
        // Actual Pr[d fails ≤ 24] = Pr[s failed] * Pr[fail | on from 0].
        let actual = 0.25 * worst;
        assert!(actual < worst);
        // Cross-check with the product chain on a tree whose failure IS
        // d's failure: top = AND(g', d) where g' = OR(s) (so the top
        // fails iff s and d both fail, and d only fails when on).
        let exact =
            sdft_product::failure_probability(&t, 24.0, &sdft_product::ProductOptions::default())
                .unwrap();
        assert!((exact - actual).abs() < 1e-12, "{exact} vs {actual}");
    }

    #[test]
    fn gates_are_rejected() {
        let (t, ..) = tree();
        let g = t.node_by_name("g").unwrap();
        assert!(matches!(
            worst_case_probability(&t, g, 24.0, 1e-12),
            Err(CoreError::UnexpectedNode { .. })
        ));
    }

    #[test]
    fn invalid_horizon_is_rejected() {
        let (t, ..) = tree();
        assert!(matches!(
            worst_case_probabilities(&t, -5.0, 1e-12),
            Err(CoreError::InvalidHorizon { .. })
        ));
    }

    #[test]
    fn probabilities_cover_all_events() {
        let (t, s, p, d) = tree();
        let probs = worst_case_probabilities(&t, 24.0, 1e-12).unwrap();
        assert_eq!(probs.get(s), 0.25);
        assert!(probs.get(p) > 0.0);
        assert!(probs.get(d) > 0.0);
    }
}
