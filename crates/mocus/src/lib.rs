#![warn(missing_docs)]

//! MOCUS minimal cutset generation with a probabilistic cutoff.
//!
//! This crate implements the classical MOCUS algorithm (Fussell &
//! Vesely, 1972) as used by commercial fault tree solvers and by §IV-B of
//! Krčál & Krčál (DSN 2015): partial cutsets are refined top-down — AND
//! gates extend a partial cutset, OR gates branch it — and a partial cutset
//! is discarded as soon as the product of its basic event probabilities
//! falls below the cutoff `c*`, which is conservative for coherent trees.
//!
//! The solver works on the *static* structure of a fault tree; dynamic
//! basic events take part through caller-supplied probabilities (for the
//! SD analysis these are the worst-case probabilities of §V-B2, supplied
//! by `sdft-core`).
//!
//! # Example
//!
//! Example 7/8 of the paper: the minimal cutsets of the toy cooling
//! system are `{e}`, `{a,c}`, `{a,d}`, `{b,c}`, `{b,d}`.
//!
//! ```
//! use sdft_ft::{EventProbabilities, FaultTreeBuilder};
//! use sdft_mocus::{minimal_cutsets, MocusOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = FaultTreeBuilder::new();
//! let a = b.static_event("a", 3e-3)?;
//! let bb = b.static_event("b", 1e-3)?;
//! let c = b.static_event("c", 3e-3)?;
//! let d = b.static_event("d", 1e-3)?;
//! let e = b.static_event("e", 3e-6)?;
//! let p1 = b.or("pump1", [a, bb])?;
//! let p2 = b.or("pump2", [c, d])?;
//! let pumps = b.and("pumps", [p1, p2])?;
//! let top = b.or("cooling", [pumps, e])?;
//! b.top(top);
//! let tree = b.build()?;
//! let probs = EventProbabilities::from_static(&tree)?;
//! let mcs = minimal_cutsets(&tree, &probs, &MocusOptions::default())?;
//! assert_eq!(mcs.len(), 5);
//! # Ok(())
//! # }
//! ```

mod assumptions;
mod engine;
mod error;
mod options;
mod stats;
mod stream;

pub use assumptions::Assumptions;
pub use engine::{
    minimal_cutsets, minimal_cutsets_rooted, minimal_cutsets_rooted_with_stats,
    minimal_cutsets_with, minimal_cutsets_with_stats,
};
pub use error::MocusError;
pub use options::MocusOptions;
pub use stats::MocusStats;
pub use stream::{stream_minimal_cutsets, CandidateSink};
