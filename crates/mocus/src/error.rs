use std::fmt;

/// Errors produced by the MOCUS cutset generator.
#[derive(Debug, Clone, PartialEq)]
pub enum MocusError {
    /// An error from the fault tree layer.
    Ft(sdft_ft::FtError),
    /// The number of live partial cutsets exceeded the configured budget.
    TooManyPartials {
        /// The configured budget.
        limit: usize,
    },
    /// The number of generated cutsets exceeded the configured budget.
    TooManyCutsets {
        /// The configured budget.
        limit: usize,
    },
    /// An at-least gate would expand into too many combinations.
    CombinationLimit {
        /// Name of the offending gate.
        gate: String,
        /// The number of combinations the expansion would produce.
        combinations: u128,
    },
    /// The same event was assumed both failed and functional.
    ConflictingAssumption {
        /// Name of the offending event.
        name: String,
    },
    /// An assumption was placed on a node that is not a basic event.
    AssumptionOnGate {
        /// Name of the offending node.
        name: String,
    },
    /// The configured cutoff is negative or NaN.
    InvalidCutoff {
        /// The offending cutoff.
        cutoff: f64,
    },
    /// A streaming consumer rejected further candidates (it failed or
    /// shut down); the real cause lives downstream of the generator.
    Aborted,
}

impl fmt::Display for MocusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MocusError::Ft(e) => write!(f, "fault tree error: {e}"),
            MocusError::TooManyPartials { limit } => {
                write!(
                    f,
                    "more than {limit} live partial cutsets; raise the cutoff or the budget"
                )
            }
            MocusError::TooManyCutsets { limit } => {
                write!(
                    f,
                    "more than {limit} cutsets generated; raise the cutoff or the budget"
                )
            }
            MocusError::CombinationLimit { gate, combinations } => write!(
                f,
                "at-least gate {gate:?} expands into {combinations} combinations (limit exceeded)"
            ),
            MocusError::ConflictingAssumption { name } => {
                write!(f, "event {name:?} assumed both failed and functional")
            }
            MocusError::AssumptionOnGate { name } => {
                write!(
                    f,
                    "assumption placed on {name:?}, which is not a basic event"
                )
            }
            MocusError::InvalidCutoff { cutoff } => write!(f, "invalid cutoff {cutoff}"),
            MocusError::Aborted => write!(f, "cutset generation aborted by the consumer"),
        }
    }
}

impl std::error::Error for MocusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MocusError::Ft(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sdft_ft::FtError> for MocusError {
    fn from(e: sdft_ft::FtError) -> Self {
        MocusError::Ft(e)
    }
}
