//! Emit-on-finalize streaming for the MOCUS engine.
//!
//! The batch entry points materialize every cutset candidate before
//! minimization. Streaming instead pushes candidates to a
//! [`CandidateSink`] as workers finalize them, in *epochs* carrying a
//! subsumption watermark. Two children `a`, `b` of a top-level OR are
//! *separable* — no candidate of one can ever subsume (or equal) a
//! candidate of the other — when either
//!
//! * their reachable basic-event sets are disjoint (no shared events at
//!   all), or
//! * each direction is blocked by a **must** event: `a` has an event
//!   contained in *every* one of its candidates that `b` cannot reach,
//!   and vice versa. (`must` is computed structurally: a basic event is
//!   its own must-set, an AND gate unions its children's must-sets, and
//!   OR / voting gates intersect them — a sound under-approximation.)
//!
//! Children are grouped with union–find: every non-separable pair
//! shares a component, and each component is one epoch. The residual
//! epoch 0 holds only the root partial itself. This is a finer plan
//! than pairwise event-disjointness — overlapping children that differ
//! in a mandatory private event (shared support systems, distinct
//! sequence tails) still split, which is what lets the downstream
//! minimizer release work while generation is still running.
//! [`CandidateSink::epoch_complete`] fires exactly once per epoch,
//! after the last `deliver` for it, so a downstream minimizer may
//! release an epoch's surviving cutsets the moment it completes instead
//! of waiting for the whole run.
//!
//! Completion is detected with a per-epoch outstanding counter: every
//! live partial and every buffered (undelivered) candidate of an epoch
//! holds one count, and the zero crossing is the watermark. Epochs that
//! never receive any work complete in a final sweep when generation
//! ends.

use crate::assumptions::Assumptions;
use crate::engine::run_streaming;
use crate::error::MocusError;
use crate::options::MocusOptions;
use crate::stats::MocusStats;
use sdft_ft::{Cutset, EventProbabilities, FaultTree, GateKind, NodeId};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Consumer side of a streaming MOCUS run. Implementations must be
/// thread-safe: any worker may call either method at any time, though
/// for a given epoch every [`deliver`](Self::deliver) happens before
/// its single [`epoch_complete`](Self::epoch_complete).
///
/// Returning `false` from either method aborts generation promptly
/// (the run ends with [`MocusError::Aborted`]); use it when the
/// downstream pipeline has failed or shut down.
pub trait CandidateSink: Sync {
    /// Take a batch of cutset candidates belonging to `epoch`. The sink
    /// owns the drained contents; the vector is cleared afterwards
    /// either way.
    fn deliver(&self, epoch: u32, batch: &mut Vec<Cutset>) -> bool;

    /// All candidates of `epoch` have been delivered; no candidate of
    /// any epoch can subsume them now, so they may be minimized among
    /// themselves and released downstream.
    fn epoch_complete(&self, epoch: u32) -> bool;
}

/// Shared state of one streaming run: the sink, the epoch plan, and the
/// per-epoch outstanding counters implementing the watermark.
pub(crate) struct StreamCtx<'s> {
    pub(crate) sink: &'s dyn CandidateSink,
    /// The gate whose OR expansion assigns epochs (the run's root);
    /// only consulted when `epochs > 1`.
    top: NodeId,
    /// Epoch of each top-child node (dense by node index, 0 elsewhere).
    child_epoch: Vec<u32>,
    epochs: u32,
    /// Live partials plus buffered candidates per epoch.
    outstanding: Vec<AtomicUsize>,
    completed: Vec<AtomicBool>,
}

impl<'s> StreamCtx<'s> {
    /// Build the epoch plan for a run rooted at `root`.
    ///
    /// Multiple epochs exist only for an OR root with no assumptions:
    /// assumptions cut events out of cutsets, which can create
    /// cross-subtree subsumption even between event-disjoint children.
    pub(crate) fn new(
        tree: &FaultTree,
        root: NodeId,
        assumptions: &Assumptions,
        sink: &'s dyn CandidateSink,
    ) -> Self {
        let mut child_epoch = vec![0u32; tree.len()];
        let mut epochs = 1u32;
        let is_or_root = tree.is_gate(root)
            && matches!(tree.gate_kind(root), Some(GateKind::Or))
            && assumptions.is_empty();
        if is_or_root {
            // Dense event numbering for the reach/must bitsets.
            let mut event_index = vec![usize::MAX; tree.len()];
            let mut num_events = 0usize;
            for event in tree.basic_events() {
                event_index[event.index()] = num_events;
                num_events += 1;
            }
            let words = num_events.div_ceil(64).max(1);
            // Per-node `reach` (all basic events in the subtree) and
            // `must` (events present in every candidate of the subtree),
            // as flat bitset rows filled in node-id order — ids are
            // topological, so children are always done before their
            // gate.
            let mut reach = vec![0u64; tree.len() * words];
            let mut must = vec![0u64; tree.len() * words];
            for id in tree.node_ids() {
                let i = id.index();
                if tree.is_basic(id) {
                    let e = event_index[i];
                    reach[i * words + e / 64] |= 1 << (e % 64);
                    must[i * words + e / 64] |= 1 << (e % 64);
                } else if tree.is_gate(id) {
                    let children = tree.gate_inputs(id);
                    let (done, row) = reach.split_at_mut(i * words);
                    for &c in children {
                        let child = &done[c.index() * words..(c.index() + 1) * words];
                        for (r, &m) in row[..words].iter_mut().zip(child) {
                            *r |= m;
                        }
                    }
                    let union_must = matches!(tree.gate_kind(id), Some(GateKind::And));
                    let (done, row) = must.split_at_mut(i * words);
                    for (k, &c) in children.iter().enumerate() {
                        let child = &done[c.index() * words..(c.index() + 1) * words];
                        for (r, &m) in row[..words].iter_mut().zip(child) {
                            // OR / voting gates keep only events every
                            // child mandates; AND mandates them all.
                            if union_must || k == 0 {
                                *r |= m;
                            } else {
                                *r &= m;
                            }
                        }
                    }
                }
            }
            let inputs = tree.gate_inputs(root);
            let row = |table: &[u64], c: NodeId| -> Vec<u64> {
                table[c.index() * words..(c.index() + 1) * words].to_vec()
            };
            let child_reach: Vec<Vec<u64>> = inputs.iter().map(|&c| row(&reach, c)).collect();
            let child_must: Vec<Vec<u64>> = inputs.iter().map(|&c| row(&must, c)).collect();
            // One direction is blocked when every candidate of `a`
            // carries an event `b` cannot reach.
            let blocked = |a: usize, b: usize| {
                child_must[a]
                    .iter()
                    .zip(&child_reach[b])
                    .any(|(m, r)| m & !r != 0)
            };
            let separable = |a: usize, b: usize| {
                child_reach[a]
                    .iter()
                    .zip(&child_reach[b])
                    .all(|(x, y)| x & y == 0)
                    || (blocked(a, b) && blocked(b, a))
            };
            // Union–find over child positions; a child listed twice is
            // never separable from itself (must ⊆ reach), so duplicate
            // occurrences land in one component and map consistently.
            let mut parent: Vec<usize> = (0..inputs.len()).collect();
            fn find(parent: &mut [usize], mut x: usize) -> usize {
                while parent[x] != x {
                    parent[x] = parent[parent[x]];
                    x = parent[x];
                }
                x
            }
            for i in 0..inputs.len() {
                for j in i + 1..inputs.len() {
                    if !separable(i, j) {
                        let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                        if a != b {
                            parent[a] = b;
                        }
                    }
                }
            }
            // Components become epochs 1.. in first-occurrence order.
            let mut component_epoch = vec![0u32; inputs.len()];
            for (i, &c) in inputs.iter().enumerate() {
                let root_pos = find(&mut parent, i);
                if component_epoch[root_pos] == 0 {
                    component_epoch[root_pos] = epochs;
                    epochs += 1;
                }
                child_epoch[c.index()] = component_epoch[root_pos];
            }
        }
        StreamCtx {
            sink,
            top: root,
            child_epoch,
            epochs,
            outstanding: (0..epochs).map(|_| AtomicUsize::new(0)).collect(),
            completed: (0..epochs).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    pub(crate) fn epochs(&self) -> u32 {
        self.epochs
    }

    /// The epoch of a child branched off `gate` by a partial of
    /// `parent_epoch`: top-OR children get their planned epoch, every
    /// other branch inherits.
    pub(crate) fn branch_epoch(&self, gate: NodeId, parent_epoch: u32, child: NodeId) -> u32 {
        if self.epochs > 1 && gate == self.top {
            self.child_epoch[child.index()]
        } else {
            parent_epoch
        }
    }

    /// A partial or buffered candidate of `epoch` came alive.
    pub(crate) fn inc(&self, epoch: u32) {
        self.outstanding[epoch as usize].fetch_add(1, Ordering::AcqRel);
    }

    /// Release `n` counts of `epoch`; the zero crossing fires the
    /// epoch's completion. Returns `false` if the sink rejected.
    pub(crate) fn release(&self, epoch: u32, n: usize) -> bool {
        if n == 0 {
            return true;
        }
        let prev = self.outstanding[epoch as usize].fetch_sub(n, Ordering::AcqRel);
        debug_assert!(prev >= n, "outstanding counter underflow");
        if prev == n {
            self.complete(epoch)
        } else {
            true
        }
    }

    fn complete(&self, epoch: u32) -> bool {
        if self.completed[epoch as usize].swap(true, Ordering::AcqRel) {
            true
        } else {
            self.sink.epoch_complete(epoch)
        }
    }

    /// Fire completion for every epoch not yet completed — the final
    /// sweep covering epochs that never received work (pruned at
    /// creation, skipped children, degenerate roots).
    pub(crate) fn complete_all(&self) -> bool {
        let mut ok = true;
        for e in 0..self.epochs {
            ok &= self.complete(e);
        }
        ok
    }
}

/// Generate cutset candidates for the top gate of `tree`, streaming
/// them into `sink` instead of materializing a list (see the module
/// docs for the epoch/watermark contract). The returned stats carry no
/// `subsumption_comparisons` — minimization belongs to the consumer.
///
/// The candidate set (and therefore the minimal cutsets the consumer
/// derives) is identical to [`minimal_cutsets`](crate::minimal_cutsets)
/// for every thread count; only delivery order and batching vary.
///
/// # Errors
///
/// Returns an error if the cutoff is invalid or a safety budget in
/// `options` is exceeded; [`MocusError::Aborted`] when the sink
/// rejected a delivery (the real cause lives with the consumer).
pub fn stream_minimal_cutsets(
    tree: &FaultTree,
    probs: &EventProbabilities,
    options: &MocusOptions,
    sink: &dyn CandidateSink,
) -> Result<MocusStats, MocusError> {
    if let Some(c) = options.cutoff {
        if !c.is_finite() || c < 0.0 {
            return Err(MocusError::InvalidCutoff { cutoff: c });
        }
    }
    let assumptions = Assumptions::new(tree);
    let ctx = StreamCtx::new(tree, tree.top(), &assumptions, sink);
    run_streaming(tree, tree.top(), probs, options, &assumptions, &ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimal_cutsets_with_stats;
    use sdft_ft::{CutsetList, FaultTreeBuilder};
    use std::collections::HashMap;
    use std::sync::Mutex;

    /// Collects deliveries per epoch and asserts the watermark
    /// contract: no delivery after an epoch completed, one completion
    /// per epoch.
    #[derive(Default)]
    struct CollectingSink {
        state: Mutex<SinkState>,
    }

    #[derive(Default)]
    struct SinkState {
        delivered: HashMap<u32, Vec<Cutset>>,
        completed: HashMap<u32, u32>,
        violations: Vec<String>,
    }

    impl CandidateSink for CollectingSink {
        fn deliver(&self, epoch: u32, batch: &mut Vec<Cutset>) -> bool {
            let mut s = self.state.lock().unwrap();
            if s.completed.contains_key(&epoch) {
                s.violations
                    .push(format!("delivery after completion of epoch {epoch}"));
            }
            let drained = std::mem::take(batch);
            s.delivered.entry(epoch).or_default().extend(drained);
            true
        }

        fn epoch_complete(&self, epoch: u32) -> bool {
            let mut s = self.state.lock().unwrap();
            *s.completed.entry(epoch).or_insert(0) += 1;
            true
        }
    }

    /// Rejects the first delivery, simulating a failed consumer.
    struct RejectingSink;

    impl CandidateSink for RejectingSink {
        fn deliver(&self, _epoch: u32, _batch: &mut Vec<Cutset>) -> bool {
            false
        }

        fn epoch_complete(&self, _epoch: u32) -> bool {
            true
        }
    }

    /// Top OR over two event-disjoint lines plus an overlapping pair
    /// sharing an event — two distinct epochs and a residual one.
    fn epoch_tree() -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        let a1 = b.static_event("a1", 0.01).unwrap();
        let a2 = b.static_event("a2", 0.02).unwrap();
        let line_a = b.and("line_a", [a1, a2]).unwrap();
        let c1 = b.static_event("c1", 0.03).unwrap();
        let c2 = b.static_event("c2", 0.04).unwrap();
        let line_c = b.or("line_c", [c1, c2]).unwrap();
        let shared = b.static_event("shared", 0.05).unwrap();
        let s1 = b.static_event("s1", 0.06).unwrap();
        let s2 = b.static_event("s2", 0.07).unwrap();
        let over1 = b.and("over1", [shared, s1]).unwrap();
        let over2 = b.and("over2", [shared, s2]).unwrap();
        let top = b.or("top", [line_a, line_c, over1, over2]).unwrap();
        b.top(top);
        b.build().unwrap()
    }

    #[test]
    fn streamed_candidates_match_batch_for_every_thread_count() {
        let t = epoch_tree();
        let probs = EventProbabilities::from_static(&t).unwrap();
        let batch_opts = MocusOptions {
            threads: 1,
            ..MocusOptions::exhaustive()
        };
        let (reference, ref_stats) = minimal_cutsets_with_stats(&t, &probs, &batch_opts).unwrap();
        for threads in [1, 2, 4] {
            let sink = CollectingSink::default();
            let opts = MocusOptions {
                threads,
                ..MocusOptions::exhaustive()
            };
            let stats = stream_minimal_cutsets(&t, &probs, &opts, &sink).unwrap();
            let state = sink.state.into_inner().unwrap();
            assert!(state.violations.is_empty(), "{:?}", state.violations);
            // Every epoch completed exactly once, and more than one
            // epoch exists (the top split into independent children).
            assert!(state.completed.values().all(|&n| n == 1));
            assert!(state.completed.len() > 1, "expected a multi-epoch plan");
            // The candidate multiset matches the batch run.
            let all: Vec<Cutset> = state.delivered.values().flatten().cloned().collect();
            assert_eq!(
                stats.cutset_candidates as usize,
                all.len(),
                "threads = {threads}"
            );
            assert_eq!(
                ref_stats.deterministic().partials_processed,
                stats.deterministic().partials_processed,
                "threads = {threads}"
            );
            // Global minimization of the streamed candidates equals the
            // batch minimal cutsets...
            let global = CutsetList::from_vec(all).minimize();
            assert_eq!(reference, global, "threads = {threads}");
            // ...and so does per-epoch minimization (the watermark
            // guarantee: epochs cannot subsume across each other).
            let mut per_epoch: Vec<Cutset> = state
                .delivered
                .values()
                .flat_map(|v| CutsetList::from_vec(v.clone()).minimize())
                .collect();
            per_epoch.sort_unstable_by(|a, b| {
                a.order()
                    .cmp(&b.order())
                    .then_with(|| a.events().cmp(b.events()))
            });
            let flat: Vec<Cutset> = reference.iter().cloned().collect();
            assert_eq!(flat, per_epoch, "threads = {threads}");
        }
    }

    #[test]
    fn rejecting_sink_aborts_generation() {
        let t = epoch_tree();
        let probs = EventProbabilities::from_static(&t).unwrap();
        for threads in [1, 4] {
            let opts = MocusOptions {
                threads,
                ..MocusOptions::exhaustive()
            };
            assert!(matches!(
                stream_minimal_cutsets(&t, &probs, &opts, &RejectingSink),
                Err(MocusError::Aborted)
            ));
        }
    }

    #[test]
    fn budgets_abort_streaming_runs() {
        let t = epoch_tree();
        let probs = EventProbabilities::from_static(&t).unwrap();
        for threads in [1, 4] {
            let sink = CollectingSink::default();
            let opts = MocusOptions {
                max_cutsets: 2,
                threads,
                ..MocusOptions::exhaustive()
            };
            assert!(matches!(
                stream_minimal_cutsets(&t, &probs, &opts, &sink),
                Err(MocusError::TooManyCutsets { limit: 2 })
            ));
        }
    }

    #[test]
    fn peak_residency_counters_are_populated() {
        let t = epoch_tree();
        let probs = EventProbabilities::from_static(&t).unwrap();
        let opts = MocusOptions {
            threads: 1,
            ..MocusOptions::exhaustive()
        };
        let (list, batch) = minimal_cutsets_with_stats(&t, &probs, &opts).unwrap();
        assert!(batch.peak_live_partials > 0);
        assert!(batch.peak_partial_bytes > 0);
        // Batch keeps every candidate resident.
        assert_eq!(batch.peak_live_candidates, batch.cutset_candidates);
        assert!(batch.peak_candidate_bytes > 0);
        assert!(!list.is_empty());
        let sink = CollectingSink::default();
        let stream = stream_minimal_cutsets(&t, &probs, &opts, &sink).unwrap();
        // Streaming delivers in batches, so resident candidates stay at
        // or below the flush threshold (tiny tree: far below).
        assert!(stream.peak_live_candidates <= batch.peak_live_candidates);
    }
}
