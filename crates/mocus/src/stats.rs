/// Counters describing one MOCUS run.
///
/// `partials_processed`, `partials_pruned`, `cutset_candidates` and
/// `subsumption_comparisons` are *schedule-independent*: every surviving
/// partial cutset is expanded exactly once and every candidate cutset is
/// checked against the full candidate set the same way, so the counts are
/// identical for every thread count (when no safety budget aborts the
/// run). `stolen_tasks`, `seed_tasks` and `workers` describe the work
/// distribution, and the `peak_*` high-water marks describe memory
/// residency; both naturally vary with the thread count and scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MocusStats {
    /// Partial cutsets processed (popped and expanded), leaves included.
    pub partials_processed: u64,
    /// Branches discarded by the cutoff, order limit or look-ahead bound.
    pub partials_pruned: u64,
    /// Cutset candidates emitted before minimization.
    pub cutset_candidates: u64,
    /// Subset tests the minimization pass performed.
    pub subsumption_comparisons: u64,
    /// Partials a worker claimed from the shared queue beyond its first
    /// task (always 0 in single-threaded runs).
    pub stolen_tasks: u64,
    /// Tasks seeded into the shared queue before the workers started.
    pub seed_tasks: u64,
    /// Worker threads used for expansion and minimization.
    pub workers: usize,
    /// Peak number of live partial cutsets (allocated and not yet
    /// consumed) across all workers. Scheduling-dependent.
    pub peak_live_partials: u64,
    /// Approximate peak bytes held by live partial cutsets.
    pub peak_partial_bytes: u64,
    /// Peak number of candidate cutsets resident in the generator (all
    /// of them in batch mode; only undelivered buffers when streaming).
    pub peak_live_candidates: u64,
    /// Approximate peak bytes held by resident candidate cutsets.
    pub peak_candidate_bytes: u64,
    /// Wall-clock time of the one-pass batch minimization (zero when
    /// streaming — the filter stage owns minimization there).
    pub minimize_time: std::time::Duration,
}

impl MocusStats {
    /// The same counters with the scheduling-dependent fields
    /// (`stolen_tasks`, `seed_tasks`, `workers`) zeroed, leaving exactly
    /// the schedule-independent ones — convenient for comparing runs at
    /// different thread counts.
    #[must_use]
    pub fn deterministic(mut self) -> Self {
        self.stolen_tasks = 0;
        self.seed_tasks = 0;
        self.workers = 0;
        self.peak_live_partials = 0;
        self.peak_partial_bytes = 0;
        self.peak_live_candidates = 0;
        self.peak_candidate_bytes = 0;
        self.minimize_time = std::time::Duration::ZERO;
        self
    }
}
