use crate::assumptions::Assumptions;
use crate::error::MocusError;
use crate::options::MocusOptions;
use crate::stats::MocusStats;
use crate::stream::StreamCtx;
use sdft_ft::{modules, Cutset, CutsetList, EventProbabilities, FaultTree, GateKind, NodeId};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Generate the minimal cutsets of `tree` above the configured cutoff.
///
/// Dynamic basic events are treated statically through the probabilities
/// in `probs` (for SD fault trees: the worst-case probabilities of §V-B2);
/// trigger edges are ignored — callers analysing SD trees first translate
/// triggers into AND gates (§V-B1), as `sdft-core` does.
///
/// Expansion runs on [`MocusOptions::threads`] workers; the returned list
/// is identical for every thread count.
///
/// # Errors
///
/// Returns an error if the cutoff is invalid or a safety budget in
/// `options` is exceeded.
pub fn minimal_cutsets(
    tree: &FaultTree,
    probs: &EventProbabilities,
    options: &MocusOptions,
) -> Result<CutsetList, MocusError> {
    Ok(minimal_cutsets_with_stats(tree, probs, options)?.0)
}

/// Like [`minimal_cutsets`], but also returning the run's counters
/// ([`MocusStats`]): partials processed and pruned, candidates emitted,
/// subsumption comparisons, and the work-distribution figures.
///
/// # Errors
///
/// Same as [`minimal_cutsets`].
pub fn minimal_cutsets_with_stats(
    tree: &FaultTree,
    probs: &EventProbabilities,
    options: &MocusOptions,
) -> Result<(CutsetList, MocusStats), MocusError> {
    minimal_cutsets_rooted_with_stats(tree, tree.top(), probs, options, &Assumptions::new(tree))
}

/// Like [`minimal_cutsets`], but with truth-value assumptions substituted
/// into the tree: events assumed failed never appear in cutsets (they are
/// already satisfied), events assumed functional kill any requirement on
/// them.
///
/// # Errors
///
/// Returns an error if an assumption is placed on a gate, the cutoff is
/// invalid, or a safety budget in `options` is exceeded.
pub fn minimal_cutsets_with(
    tree: &FaultTree,
    probs: &EventProbabilities,
    options: &MocusOptions,
    assumptions: &Assumptions,
) -> Result<CutsetList, MocusError> {
    Ok(minimal_cutsets_rooted_with_stats(tree, tree.top(), probs, options, assumptions)?.0)
}

/// Like [`minimal_cutsets_with`], but for the function of an arbitrary
/// node instead of the top gate. Used by the SD analysis to compute the
/// minimal failing subsets of a *triggering* gate (§V-C step 2).
///
/// # Errors
///
/// Same as [`minimal_cutsets_with`].
pub fn minimal_cutsets_rooted(
    tree: &FaultTree,
    root: NodeId,
    probs: &EventProbabilities,
    options: &MocusOptions,
    assumptions: &Assumptions,
) -> Result<CutsetList, MocusError> {
    Ok(minimal_cutsets_rooted_with_stats(tree, root, probs, options, assumptions)?.0)
}

/// The most general entry point: arbitrary root, assumptions, and the
/// run's [`MocusStats`] alongside the cutset list.
///
/// # Errors
///
/// Same as [`minimal_cutsets_with`].
pub fn minimal_cutsets_rooted_with_stats(
    tree: &FaultTree,
    root: NodeId,
    probs: &EventProbabilities,
    options: &MocusOptions,
    assumptions: &Assumptions,
) -> Result<(CutsetList, MocusStats), MocusError> {
    if let Some(c) = options.cutoff {
        if !c.is_finite() || c < 0.0 {
            return Err(MocusError::InvalidCutoff { cutoff: c });
        }
    }
    assumptions.validate(tree)?;
    Engine::new(tree, probs, options, assumptions).run(root)
}

#[derive(Debug, Clone)]
struct Partial {
    /// Basic events chosen to fail, sorted by id.
    events: Vec<NodeId>,
    /// Gates that still need to fail, used as a stack.
    gates: Vec<NodeId>,
    /// Product of the probabilities of `events`.
    prob: f64,
    /// Streaming epoch the partial belongs to (0 in batch runs).
    epoch: u32,
}

/// Approximate resident bytes of a partial cutset (two inline vectors
/// plus the struct itself).
fn partial_bytes(partial: &Partial) -> usize {
    (partial.events.len() + partial.gates.len()) * 8 + 48
}

/// Approximate resident bytes of a candidate cutset.
fn cutset_bytes(cutset: &Cutset) -> usize {
    cutset.order() * 8 + 24
}

enum Outcome {
    Alive,
    Dead,
}

/// Per-worker mutable state: the local partial stack, the cutsets found,
/// recycled `Partial` allocations, and the scratch buffers `within_bounds`
/// needs — everything the sequential engine kept in one struct, sharded so
/// workers never contend on it.
struct Worker {
    /// Local DFS stack (also the BFS frontier during seeding).
    local: Vec<Partial>,
    /// Cutset candidates this worker emitted (batch mode).
    found: Vec<Cutset>,
    /// Per-epoch buffers of candidates awaiting delivery (streaming).
    stream_found: Vec<Vec<Cutset>>,
    /// Recycled partials: branching pulls allocations from here instead
    /// of cloning fresh vectors for every child.
    pool: Vec<Partial>,
    /// Scratch bitset for the disjointness test in `within_bounds`.
    scratch: Vec<u64>,
    /// Scratch list for sorting pending gates by upper bound.
    gate_scratch: Vec<NodeId>,
    /// Branches discarded by the cutoff / order / look-ahead bounds.
    pruned: u64,
    /// Tasks claimed from the shared queue.
    pulls: u64,
    /// Epoch of the last partial this worker expanded (streaming).
    /// Depth-first traversal keeps an epoch's partials contiguous, so a
    /// switch means the worker is done contributing to the previous
    /// epoch for now — its buffer is flushed immediately, letting the
    /// watermark fire mid-run instead of at the final drain.
    last_epoch: Option<u32>,
    /// Outstanding-count releases deferred for `debt_epoch` (streaming).
    /// Expansion releases one count per processed partial and re-takes
    /// counts for the children it pushes; batching the releases locally
    /// and cancelling them against the next pushes removes two atomic
    /// RMWs from almost every expansion. The shared counter only ever
    /// over-counts (debt is non-negative), so an epoch can never
    /// complete early — the debt is settled at the same boundaries that
    /// flush the candidate buffer (epoch switch, idle, retirement).
    debt_epoch: Option<u32>,
    debt: usize,
}

/// Cap on recycled partials per worker, bounding idle memory.
const POOL_LIMIT: usize = 256;

/// Candidates buffered per epoch before a worker flushes to the sink.
/// Large enough that the per-delivery channel cost (mutex, condvar
/// wakeup, and — on few-core hosts — a context switch to the filter
/// thread) amortizes to noise against the expansion work behind each
/// candidate; deep presets move millions of candidates, so delivery
/// count matters more than per-epoch buffer residency (bounded at
/// `STREAM_BATCH × epochs × workers` candidates).
const STREAM_BATCH: usize = 512;

impl Worker {
    fn new(words: usize, epochs: usize) -> Self {
        Worker {
            local: Vec::new(),
            found: Vec::new(),
            stream_found: (0..epochs).map(|_| Vec::new()).collect(),
            pool: Vec::new(),
            scratch: vec![0u64; words],
            gate_scratch: Vec::new(),
            pruned: 0,
            pulls: 0,
            last_epoch: None,
            debt_epoch: None,
            debt: 0,
        }
    }

    /// A copy of `src` backed by recycled allocations when available.
    fn alloc_copy(&mut self, src: &Partial) -> Partial {
        match self.pool.pop() {
            Some(mut p) => {
                p.events.clear();
                p.events.extend_from_slice(&src.events);
                p.gates.clear();
                p.gates.extend_from_slice(&src.gates);
                p.prob = src.prob;
                p.epoch = src.epoch;
                p
            }
            None => src.clone(),
        }
    }

    fn recycle(&mut self, mut partial: Partial) {
        if self.pool.len() < POOL_LIMIT {
            partial.events.clear();
            partial.gates.clear();
            self.pool.push(partial);
        }
    }

    /// Tasks claimed beyond the worker's first are steals.
    fn stolen(&self) -> u64 {
        self.pulls.saturating_sub(1)
    }
}

/// Coordination state shared by all workers: the injector queue with its
/// termination protocol, the global safety budgets, and the first error.
struct Shared {
    queue: Mutex<Queue>,
    ready: Condvar,
    /// Workers currently waiting for work — donors check this without
    /// taking the queue lock.
    hungry: AtomicUsize,
    /// Partials processed, against `max_partials`.
    processed: AtomicUsize,
    /// Cutset candidates emitted, against `max_cutsets`.
    candidates: AtomicUsize,
    /// Set on the first error; workers abandon their stacks promptly.
    abort: AtomicBool,
    error: Mutex<Option<MocusError>>,
    workers: usize,
    /// Memory high-water tracking: live partials / resident candidates
    /// (count and approximate bytes) with their peaks.
    live_partials: AtomicUsize,
    peak_partials: AtomicUsize,
    live_partial_bytes: AtomicUsize,
    peak_partial_bytes: AtomicUsize,
    live_candidates: AtomicUsize,
    peak_candidates: AtomicUsize,
    live_candidate_bytes: AtomicUsize,
    peak_candidate_bytes: AtomicUsize,
}

struct Queue {
    tasks: Vec<Partial>,
    idle: usize,
    done: bool,
}

impl Shared {
    fn new(workers: usize) -> Self {
        Shared {
            queue: Mutex::new(Queue {
                tasks: Vec::new(),
                idle: 0,
                done: false,
            }),
            ready: Condvar::new(),
            hungry: AtomicUsize::new(0),
            processed: AtomicUsize::new(0),
            candidates: AtomicUsize::new(0),
            abort: AtomicBool::new(false),
            error: Mutex::new(None),
            workers,
            live_partials: AtomicUsize::new(0),
            peak_partials: AtomicUsize::new(0),
            live_partial_bytes: AtomicUsize::new(0),
            peak_partial_bytes: AtomicUsize::new(0),
            live_candidates: AtomicUsize::new(0),
            peak_candidates: AtomicUsize::new(0),
            live_candidate_bytes: AtomicUsize::new(0),
            peak_candidate_bytes: AtomicUsize::new(0),
        }
    }

    /// A partial came alive (allocated or copied for a branch).
    fn partial_created(&self, partial: &Partial) {
        let count = self.live_partials.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_partials.fetch_max(count, Ordering::Relaxed);
        let bytes = partial_bytes(partial);
        let total = self.live_partial_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_partial_bytes.fetch_max(total, Ordering::Relaxed);
    }

    /// A partial died (pruned, dead, or finalized into a candidate).
    fn partial_dropped(&self, partial: &Partial) {
        self.live_partials.fetch_sub(1, Ordering::Relaxed);
        self.live_partial_bytes
            .fetch_sub(partial_bytes(partial), Ordering::Relaxed);
    }

    /// A candidate cutset became resident in the generator.
    fn candidate_created(&self, cutset: &Cutset) {
        let count = self.live_candidates.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_candidates.fetch_max(count, Ordering::Relaxed);
        let bytes = cutset_bytes(cutset);
        let total = self
            .live_candidate_bytes
            .fetch_add(bytes, Ordering::Relaxed)
            + bytes;
        self.peak_candidate_bytes
            .fetch_max(total, Ordering::Relaxed);
    }

    /// `n` buffered candidates totalling `bytes` left the generator.
    fn candidates_dropped(&self, n: usize, bytes: usize) {
        self.live_candidates.fetch_sub(n, Ordering::Relaxed);
        self.live_candidate_bytes
            .fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Record the first error and wake everyone up.
    fn fail(&self, error: MocusError) {
        {
            let mut slot = self.error.lock().expect("error slot");
            if slot.is_none() {
                *slot = Some(error);
            }
        }
        self.abort.store(true, Ordering::Relaxed);
        let mut queue = self.queue.lock().expect("work queue");
        queue.done = true;
        self.ready.notify_all();
        drop(queue);
    }

    /// Claim a task from the shared queue, blocking until one appears or
    /// every worker is idle (then the expansion is complete).
    fn steal(&self) -> Option<Partial> {
        let mut queue = self.queue.lock().expect("work queue");
        loop {
            if queue.done || self.abort.load(Ordering::Relaxed) {
                return None;
            }
            if let Some(task) = queue.tasks.pop() {
                return Some(task);
            }
            queue.idle += 1;
            if queue.idle == self.workers {
                // Every local stack and the shared queue are empty: done.
                queue.done = true;
                queue.idle -= 1;
                self.ready.notify_all();
                return None;
            }
            self.hungry.fetch_add(1, Ordering::Relaxed);
            queue = self.ready.wait(queue).expect("work queue");
            self.hungry.fetch_sub(1, Ordering::Relaxed);
            queue.idle -= 1;
        }
    }
}

struct Engine<'a> {
    tree: &'a FaultTree,
    probs: &'a EventProbabilities,
    options: &'a MocusOptions,
    assumptions: &'a Assumptions,
    /// Per node: the largest probability of any single way to fail it
    /// (OR → max over inputs, AND → product, respecting assumptions).
    /// Used for look-ahead pruning; empty when the cutoff is disabled.
    upper_bound: Vec<f64>,
    /// Dense event index per node (`usize::MAX` for gates).
    event_index: Vec<usize>,
    /// Per node: bitmask over dense event indices of its subtree; empty
    /// when the cutoff is disabled.
    masks: Vec<Vec<u64>>,
    /// Words per event bitmask.
    words: usize,
    /// Streaming context: candidates are delivered to its sink on
    /// finalize instead of accumulating in `Worker::found`.
    stream: Option<&'a StreamCtx<'a>>,
}

/// Streaming driver used by [`crate::stream::stream_minimal_cutsets`]:
/// same expansion engine and work-stealing pool, candidates routed to
/// the context's sink with epoch watermarks instead of being merged and
/// minimized here.
pub(crate) fn run_streaming<'a>(
    tree: &'a FaultTree,
    root: NodeId,
    probs: &'a EventProbabilities,
    options: &'a MocusOptions,
    assumptions: &'a Assumptions,
    ctx: &'a StreamCtx<'a>,
) -> Result<MocusStats, MocusError> {
    assumptions.validate(tree)?;
    let mut engine = Engine::new(tree, probs, options, assumptions);
    engine.stream = Some(ctx);
    engine.run(root).map(|(_, stats)| stats)
}

impl<'a> Engine<'a> {
    fn new(
        tree: &'a FaultTree,
        probs: &'a EventProbabilities,
        options: &'a MocusOptions,
        assumptions: &'a Assumptions,
    ) -> Self {
        let mut event_index = vec![usize::MAX; tree.len()];
        let mut num_events = 0;
        for event in tree.basic_events() {
            event_index[event.index()] = num_events;
            num_events += 1;
        }
        let words = num_events.div_ceil(64);

        let (upper_bound, masks) = if options.cutoff.is_some() && options.lookahead {
            let mut ub = vec![0.0f64; tree.len()];
            let mut masks: Vec<Vec<u64>> = vec![Vec::new(); tree.len()];
            // Node ids are topological (inputs precede gates).
            for id in tree.node_ids() {
                let i = id.index();
                if tree.is_basic(id) {
                    ub[i] = if assumptions.is_failed(id) {
                        1.0
                    } else if assumptions.is_ok(id) {
                        0.0
                    } else {
                        probs.get(id)
                    };
                    let mut mask = vec![0u64; words];
                    let e = event_index[i];
                    mask[e / 64] |= 1 << (e % 64);
                    masks[i] = mask;
                } else {
                    let inputs = tree.gate_inputs(id);
                    // Shared subtrees make naive products unsound (a
                    // completion can reuse one event for several
                    // children), so products only multiply children with
                    // pairwise-disjoint subtrees; overlapping children
                    // contribute a factor of 1.
                    ub[i] = match tree.gate_kind(id).expect("gate") {
                        GateKind::Or => inputs.iter().map(|c| ub[c.index()]).fold(0.0, f64::max),
                        GateKind::And => {
                            let mut order: Vec<&NodeId> = inputs.iter().collect();
                            order.sort_by(|a, b| {
                                ub[a.index()]
                                    .partial_cmp(&ub[b.index()])
                                    .unwrap_or(std::cmp::Ordering::Equal)
                            });
                            let mut union = vec![0u64; words];
                            let mut product = 1.0;
                            for c in order {
                                let mask = &masks[c.index()];
                                if mask.iter().zip(&union).all(|(m, u)| m & u == 0) {
                                    product *= ub[c.index()];
                                    for (u, m) in union.iter_mut().zip(mask) {
                                        *u |= m;
                                    }
                                }
                            }
                            product
                        }
                        GateKind::AtLeast(k) => {
                            let k = k as usize;
                            let mut ubs: Vec<f64> = inputs.iter().map(|c| ub[c.index()]).collect();
                            ubs.sort_by(|a, b| {
                                b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal)
                            });
                            let pairwise_disjoint = inputs.iter().enumerate().all(|(x, a)| {
                                inputs.iter().skip(x + 1).all(|b| {
                                    masks[a.index()]
                                        .iter()
                                        .zip(&masks[b.index()])
                                        .all(|(ma, mb)| ma & mb == 0)
                                })
                            });
                            if pairwise_disjoint {
                                // Any k-subset's product is at most the
                                // product of the k largest bounds.
                                ubs.iter().take(k).product()
                            } else {
                                // Any satisfied k-subset contains a child
                                // whose bound is at most the k-th largest.
                                ubs.get(k - 1).copied().unwrap_or(0.0)
                            }
                        }
                    };
                    let mut mask = vec![0u64; words];
                    for c in inputs {
                        for (w, m) in mask.iter_mut().zip(&masks[c.index()]) {
                            *w |= m;
                        }
                    }
                    masks[i] = mask;
                }
            }
            (ub, masks)
        } else {
            (Vec::new(), Vec::new())
        };

        Engine {
            tree,
            probs,
            options,
            assumptions,
            upper_bound,
            event_index,
            masks,
            words,
            stream: None,
        }
    }

    fn run(&self, root: NodeId) -> Result<(CutsetList, MocusStats), MocusError> {
        let tree = self.tree;
        let threads = match self.options.threads {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            n => n,
        };
        let base_stats = MocusStats {
            workers: threads,
            ..MocusStats::default()
        };
        // A basic-event root degenerates to a single obligation.
        let initial = if tree.is_basic(root) {
            if self.assumptions.is_failed(root) {
                if let Some(ctx) = self.stream {
                    let mut batch = vec![Cutset::new(std::iter::empty())];
                    if !ctx.sink.deliver(0, &mut batch) || !ctx.complete_all() {
                        return Err(MocusError::Aborted);
                    }
                    return Ok((CutsetList::new(), base_stats));
                }
                return Ok((
                    CutsetList::from_vec(vec![Cutset::new(std::iter::empty())]),
                    base_stats,
                ));
            }
            if self.assumptions.is_ok(root) {
                if let Some(ctx) = self.stream {
                    if !ctx.complete_all() {
                        return Err(MocusError::Aborted);
                    }
                }
                return Ok((CutsetList::new(), base_stats));
            }
            Partial {
                events: vec![root],
                gates: Vec::new(),
                prob: self.probs.get(root),
                epoch: 0,
            }
        } else {
            Partial {
                events: Vec::new(),
                gates: vec![root],
                prob: 1.0,
                epoch: 0,
            }
        };

        let epochs = self.stream.map_or(0, |ctx| ctx.epochs() as usize);
        let mut workers: Vec<Worker> = (0..threads)
            .map(|_| Worker::new(self.words, epochs))
            .collect();
        if !self.within_bounds(&mut workers[0], &initial) {
            if let Some(ctx) = self.stream {
                if !ctx.complete_all() {
                    return Err(MocusError::Aborted);
                }
            }
            return Ok((
                CutsetList::new(),
                MocusStats {
                    partials_pruned: 1,
                    ..base_stats
                },
            ));
        }
        let shared = Shared::new(threads);
        let mut stats = base_stats;

        shared.partial_created(&initial);
        if let Some(ctx) = self.stream {
            ctx.inc(initial.epoch);
        }
        workers[0].local.push(initial);
        if threads > 1 {
            // Module-aware seeding: expand breadth-first in the calling
            // thread, parking partials whose next obligation heads an
            // independent module (a self-contained subtree — a natural
            // task unit), until there is one task per worker with slack.
            let module_heads = {
                let mut heads = vec![false; tree.len()];
                for m in modules(tree) {
                    heads[m.index()] = true;
                }
                // The root module is the whole problem, not a task.
                heads[root.index()] = false;
                heads
            };
            let target = 4 * threads;
            let mut budget = 64usize.saturating_mul(threads);
            let worker = &mut workers[0];
            let mut parked: Vec<Partial> = Vec::new();
            while !worker.local.is_empty()
                && parked.len() + worker.local.len() < target
                && budget > 0
            {
                let partial = worker.local.remove(0);
                if partial
                    .gates
                    .last()
                    .is_some_and(|g| module_heads[g.index()])
                {
                    parked.push(partial);
                    continue;
                }
                budget -= 1;
                self.expand_one(worker, &shared, partial)?;
            }
            let mut queue = shared.queue.lock().expect("work queue");
            queue.tasks.extend(parked);
            queue.tasks.append(&mut worker.local);
            stats.seed_tasks = queue.tasks.len() as u64;
            drop(queue);

            std::thread::scope(|scope| {
                for worker in &mut workers {
                    let shared = &shared;
                    scope.spawn(move || self.worker_loop(shared, worker));
                }
            });
            if let Some(error) = shared.error.lock().expect("error slot").take() {
                return Err(error);
            }
        } else {
            stats.seed_tasks = 1;
            self.worker_loop(&shared, &mut workers[0]);
            if let Some(error) = shared.error.lock().expect("error slot").take() {
                return Err(error);
            }
        }

        stats.partials_processed = shared.processed.load(Ordering::Relaxed) as u64;
        stats.cutset_candidates = shared.candidates.load(Ordering::Relaxed) as u64;
        stats.partials_pruned = workers.iter().map(|w| w.pruned).sum();
        stats.stolen_tasks = workers.iter().map(Worker::stolen).sum();
        stats.peak_live_partials = shared.peak_partials.load(Ordering::Relaxed) as u64;
        stats.peak_partial_bytes = shared.peak_partial_bytes.load(Ordering::Relaxed) as u64;
        stats.peak_live_candidates = shared.peak_candidates.load(Ordering::Relaxed) as u64;
        stats.peak_candidate_bytes = shared.peak_candidate_bytes.load(Ordering::Relaxed) as u64;

        if let Some(ctx) = self.stream {
            // Worker buffers were flushed before each worker retired;
            // sweep any epoch that never received work. Minimization
            // (and its comparison count) belongs to the consumer.
            debug_assert!(workers
                .iter()
                .all(|w| w.stream_found.iter().all(Vec::is_empty)));
            if !ctx.complete_all() {
                return Err(MocusError::Aborted);
            }
            return Ok((CutsetList::new(), stats));
        }

        // Deterministic merge: the candidate set is schedule-independent
        // (pruning is per-branch and order-independent), and minimization
        // canonically sorts, so the final list is identical for every
        // thread count.
        let total: usize = workers.iter().map(|w| w.found.len()).sum();
        let mut all: Vec<Cutset> = Vec::with_capacity(total);
        for worker in &mut workers {
            all.append(&mut worker.found);
        }
        let minimize_begin = std::time::Instant::now();
        let (minimized, comparisons) = CutsetList::from_vec(all).minimize_with_stats(threads);
        stats.minimize_time = minimize_begin.elapsed();
        stats.subsumption_comparisons = comparisons;
        Ok((minimized, stats))
    }

    /// One worker: drain the local stack depth-first, donating the bottom
    /// half whenever other workers starve, then fall back to stealing
    /// from the shared queue. Errors are published through `shared`.
    fn worker_loop(&self, shared: &Shared, worker: &mut Worker) {
        loop {
            while let Some(partial) = worker.local.pop() {
                if shared.abort.load(Ordering::Relaxed) {
                    return;
                }
                // Crossing into a different epoch: hand the previous
                // epoch's buffered candidates to the sink now. Without
                // this, a busy worker only flushes on the batch
                // threshold or when it idles — single-threaded that is
                // the very end of the run, which defeats the watermark.
                if let Some(ctx) = self.stream {
                    if let Some(prev) = worker.last_epoch {
                        if prev != partial.epoch {
                            if let Err(error) = self.flush_epoch(shared, worker, ctx, prev as usize)
                            {
                                shared.fail(error);
                                return;
                            }
                        }
                    }
                    worker.last_epoch = Some(partial.epoch);
                }
                if let Err(error) = self.expand_one(worker, shared, partial) {
                    shared.fail(error);
                    return;
                }
                if worker.local.len() > 1 && shared.hungry.load(Ordering::Relaxed) > 0 {
                    self.donate(shared, worker);
                }
            }
            // Flush buffered candidates before blocking (or retiring):
            // an idle worker must not sit on undelivered work, and the
            // termination protocol relies on every buffer being empty
            // when the last worker detects completion.
            if let Some(ctx) = self.stream {
                if let Err(error) = self.flush_all(shared, worker, ctx) {
                    shared.fail(error);
                    return;
                }
            }
            match shared.steal() {
                Some(partial) => {
                    worker.pulls += 1;
                    worker.local.push(partial);
                }
                None => return,
            }
        }
    }

    /// Move the bottom half of the local stack — the shallowest partials,
    /// carrying the largest unexpanded subtrees — into the shared queue.
    fn donate(&self, shared: &Shared, worker: &mut Worker) {
        let give = worker.local.len() / 2;
        if give == 0 {
            return;
        }
        let mut queue = shared.queue.lock().expect("work queue");
        queue.tasks.extend(worker.local.drain(..give));
        shared.ready.notify_all();
        drop(queue);
    }

    /// Deliver one epoch's buffered candidates to the sink, then drop
    /// their outstanding counts. The delivery happens *before* the
    /// counts are released, so the epoch's completion (fired by the
    /// zero crossing, possibly right here) is ordered after every
    /// delivery for it.
    fn flush_epoch(
        &self,
        shared: &Shared,
        worker: &mut Worker,
        ctx: &StreamCtx<'_>,
        epoch: usize,
    ) -> Result<(), MocusError> {
        // Settle this epoch's deferred releases in the same counter
        // operation as the delivered batch.
        let debt = if worker.debt_epoch == Some(epoch as u32) {
            worker.debt_epoch = None;
            std::mem::take(&mut worker.debt)
        } else {
            0
        };
        if worker.stream_found[epoch].is_empty() {
            if debt > 0 && !ctx.release(epoch as u32, debt) {
                return Err(MocusError::Aborted);
            }
            return Ok(());
        }
        let buf = &mut worker.stream_found[epoch];
        let n = buf.len();
        let bytes: usize = buf.iter().map(cutset_bytes).sum();
        let ok = ctx.sink.deliver(epoch as u32, buf);
        buf.clear();
        shared.candidates_dropped(n, bytes);
        if !ok || !ctx.release(epoch as u32, n + debt) {
            return Err(MocusError::Aborted);
        }
        Ok(())
    }

    /// Flush every non-empty epoch buffer of `worker`.
    fn flush_all(
        &self,
        shared: &Shared,
        worker: &mut Worker,
        ctx: &StreamCtx<'_>,
    ) -> Result<(), MocusError> {
        for epoch in 0..worker.stream_found.len() {
            self.flush_epoch(shared, worker, ctx, epoch)?;
        }
        Ok(())
    }

    /// Push a surviving partial onto the local stack, counting it live
    /// (residency is measured over *queued* partials, whose size is
    /// fixed while they wait) and giving it an outstanding count in
    /// streaming mode.
    fn push_live(&self, worker: &mut Worker, shared: &Shared, partial: Partial) {
        shared.partial_created(&partial);
        if let Some(ctx) = self.stream {
            if worker.debt_epoch == Some(partial.epoch) && worker.debt > 0 {
                // Transfer a deferred release of the same epoch to the
                // new partial: the shared counter is untouched instead
                // of paying a fetch_add/fetch_sub pair per expansion.
                worker.debt -= 1;
            } else {
                ctx.inc(partial.epoch);
            }
        }
        worker.local.push(partial);
    }

    /// Drop the count the partial entering `expand_one` held (it was
    /// not finalized into a candidate). The release is deferred into the
    /// worker's local debt rather than hitting the shared counter: the
    /// counter then only ever over-counts, so completion can never fire
    /// early, and the debt is settled — firing the zero crossing if due
    /// — at the same boundaries that flush the candidate buffers (epoch
    /// switch, batch flush, idle, retirement).
    fn release_entry(&self, worker: &mut Worker, epoch: u32) -> Result<(), MocusError> {
        if self.stream.is_some() {
            if worker.debt_epoch == Some(epoch) {
                worker.debt += 1;
            } else {
                self.settle_debt(worker)?;
                worker.debt_epoch = Some(epoch);
                worker.debt = 1;
            }
        }
        Ok(())
    }

    /// Hand the worker's deferred releases back to the shared epoch
    /// counter.
    fn settle_debt(&self, worker: &mut Worker) -> Result<(), MocusError> {
        if worker.debt > 0 {
            let ctx = self.stream.expect("debt only accrues in streaming mode");
            let epoch = worker.debt_epoch.expect("debt carries its epoch");
            let n = std::mem::take(&mut worker.debt);
            if !ctx.release(epoch, n) {
                return Err(MocusError::Aborted);
            }
        }
        Ok(())
    }

    /// Expand one partial cutset: leaves become candidates, AND extends,
    /// OR branches (reusing the parent allocation for the last child),
    /// at-least enumerates combinations. Surviving branches are pushed
    /// onto the worker's local stack.
    fn expand_one(
        &self,
        worker: &mut Worker,
        shared: &Shared,
        mut partial: Partial,
    ) -> Result<(), MocusError> {
        let entry_epoch = partial.epoch;
        // The partial left its queue; it is re-counted if re-pushed.
        shared.partial_dropped(&partial);
        let processed = shared.processed.fetch_add(1, Ordering::Relaxed) + 1;
        if processed > self.options.max_partials {
            return Err(MocusError::TooManyPartials {
                limit: self.options.max_partials,
            });
        }
        let Some(gate) = partial.gates.pop() else {
            let candidates = shared.candidates.fetch_add(1, Ordering::Relaxed) + 1;
            if candidates > self.options.max_cutsets {
                return Err(MocusError::TooManyCutsets {
                    limit: self.options.max_cutsets,
                });
            }
            let Partial { events, gates, .. } = partial;
            let cutset = Cutset::new(events);
            shared.candidate_created(&cutset);
            worker.recycle(Partial {
                events: Vec::new(),
                gates,
                prob: 1.0,
                epoch: 0,
            });
            if let Some(ctx) = self.stream {
                // The entry count transfers to the buffered candidate;
                // it is released when the batch is delivered.
                let epoch = entry_epoch as usize;
                worker.stream_found[epoch].push(cutset);
                if worker.stream_found[epoch].len() >= STREAM_BATCH {
                    self.flush_epoch(shared, worker, ctx, epoch)?;
                }
            } else {
                worker.found.push(cutset);
            }
            return Ok(());
        };
        match self.tree.gate_kind(gate).expect("pending nodes are gates") {
            GateKind::And => {
                let mut alive = true;
                for &child in self.tree.gate_inputs(gate) {
                    if matches!(self.add_child(&mut partial, child), Outcome::Dead) {
                        alive = false;
                        break;
                    }
                }
                if !alive {
                    worker.recycle(partial);
                } else if self.within_bounds(worker, &partial) {
                    self.push_live(worker, shared, partial);
                } else {
                    worker.pruned += 1;
                    worker.recycle(partial);
                }
            }
            GateKind::Or => {
                let inputs = self.tree.gate_inputs(gate);
                // If any input is an event assumed failed, the gate is
                // already failed and the obligation simply drops.
                let satisfied = inputs
                    .iter()
                    .any(|&c| self.tree.is_basic(c) && self.assumptions.is_failed(c));
                if satisfied {
                    self.push_live(worker, shared, partial);
                    return self.release_entry(worker, entry_epoch);
                }
                let skip = |c: NodeId| self.tree.is_basic(c) && self.assumptions.is_ok(c);
                let Some(last) = inputs.iter().rposition(|&c| !skip(c)) else {
                    worker.recycle(partial);
                    return self.release_entry(worker, entry_epoch);
                };
                for &child in &inputs[..last] {
                    if skip(child) {
                        continue;
                    }
                    let mut branch = worker.alloc_copy(&partial);
                    if let Some(ctx) = self.stream {
                        branch.epoch = ctx.branch_epoch(gate, entry_epoch, child);
                    }
                    if matches!(self.add_child(&mut branch, child), Outcome::Dead) {
                        worker.recycle(branch);
                    } else if self.within_bounds(worker, &branch) {
                        self.push_live(worker, shared, branch);
                    } else {
                        worker.pruned += 1;
                        worker.recycle(branch);
                    }
                }
                // Reuse the parent allocation for the final branch.
                if let Some(ctx) = self.stream {
                    partial.epoch = ctx.branch_epoch(gate, entry_epoch, inputs[last]);
                }
                if matches!(self.add_child(&mut partial, inputs[last]), Outcome::Dead) {
                    worker.recycle(partial);
                } else if self.within_bounds(worker, &partial) {
                    self.push_live(worker, shared, partial);
                } else {
                    worker.pruned += 1;
                    worker.recycle(partial);
                }
            }
            GateKind::AtLeast(k) => {
                self.expand_atleast(worker, shared, gate, k as usize, partial)?;
            }
        }
        self.release_entry(worker, entry_epoch)
    }

    /// Add one child requirement to a partial cutset.
    fn add_child(&self, partial: &mut Partial, child: NodeId) -> Outcome {
        if self.tree.is_gate(child) {
            if !partial.gates.contains(&child) {
                partial.gates.push(child);
            }
            return Outcome::Alive;
        }
        if self.assumptions.is_failed(child) {
            return Outcome::Alive; // already satisfied, contributes nothing
        }
        if self.assumptions.is_ok(child) {
            return Outcome::Dead; // requirement can never be met
        }
        if let Err(pos) = partial.events.binary_search(&child) {
            partial.events.insert(pos, child);
            partial.prob *= self.probs.get(child);
        }
        Outcome::Alive
    }

    /// Whether a partial cutset survives the cutoff and order limits.
    ///
    /// Beyond the plain probability test, a look-ahead bound prunes
    /// partials whose pending gates can no longer produce a cutset above
    /// the cutoff: each pending gate whose subtree is disjoint from the
    /// chosen events *and* from the other counted subtrees contributes at
    /// most its best single completion (`upper_bound`), so the product is
    /// a sound upper bound on any refinement of the partial.
    fn within_bounds(&self, worker: &mut Worker, partial: &Partial) -> bool {
        if let Some(max_order) = self.options.max_order {
            if partial.events.len() > max_order {
                return false;
            }
        }
        let Some(cutoff) = self.options.cutoff else {
            return true;
        };
        if partial.prob <= cutoff {
            return false;
        }
        if partial.gates.is_empty() || self.masks.is_empty() {
            return true;
        }
        // Greedy disjoint look-ahead: cheapest gates first for the
        // earliest possible exit.
        worker.gate_scratch.clear();
        worker.gate_scratch.extend_from_slice(&partial.gates);
        let ub = &self.upper_bound;
        worker.gate_scratch.sort_by(|a, b| {
            ub[a.index()]
                .partial_cmp(&ub[b.index()])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        worker.scratch.fill(0);
        for &event in &partial.events {
            let e = self.event_index[event.index()];
            worker.scratch[e / 64] |= 1 << (e % 64);
        }
        let mut bound = partial.prob;
        for i in 0..worker.gate_scratch.len() {
            let gate = worker.gate_scratch[i];
            let mask = &self.masks[gate.index()];
            let disjoint = mask.iter().zip(&worker.scratch).all(|(m, s)| m & s == 0);
            if disjoint {
                bound *= ub[gate.index()];
                if bound <= cutoff {
                    return false;
                }
                for (s, m) in worker.scratch.iter_mut().zip(mask) {
                    *s |= m;
                }
            }
        }
        true
    }

    fn expand_atleast(
        &self,
        worker: &mut Worker,
        shared: &Shared,
        gate: NodeId,
        k: usize,
        partial: Partial,
    ) -> Result<(), MocusError> {
        // Assumptions reduce the voting problem: failed inputs lower the
        // threshold, functional inputs leave the candidate pool.
        let tree = self.tree;
        let mut candidates: Vec<NodeId> = Vec::new();
        let mut threshold = k;
        for &child in tree.gate_inputs(gate) {
            if tree.is_basic(child) {
                if self.assumptions.is_failed(child) {
                    threshold = threshold.saturating_sub(1);
                    continue;
                }
                if self.assumptions.is_ok(child) {
                    continue;
                }
            }
            candidates.push(child);
        }
        if threshold == 0 {
            self.push_live(worker, shared, partial);
            return Ok(());
        }
        if threshold > candidates.len() {
            worker.recycle(partial);
            return Ok(()); // dead: not enough inputs can still fail
        }
        let combos = binomial(candidates.len() as u128, threshold as u128);
        if combos > self.options.max_combinations {
            return Err(MocusError::CombinationLimit {
                gate: tree.name(gate).to_owned(),
                combinations: combos,
            });
        }
        // Enumerate all threshold-sized subsets of the candidates.
        let mut indices: Vec<usize> = (0..threshold).collect();
        'combos: loop {
            let mut branch = worker.alloc_copy(&partial);
            let mut alive = true;
            for &i in &indices {
                if matches!(self.add_child(&mut branch, candidates[i]), Outcome::Dead) {
                    alive = false;
                    break;
                }
            }
            if !alive {
                worker.recycle(branch);
            } else if self.within_bounds(worker, &branch) {
                self.push_live(worker, shared, branch);
            } else {
                worker.pruned += 1;
                worker.recycle(branch);
            }
            // Advance to the next combination in lexicographic order.
            let mut pos = threshold;
            loop {
                if pos == 0 {
                    break 'combos;
                }
                pos -= 1;
                if indices[pos] != pos + candidates.len() - threshold {
                    indices[pos] += 1;
                    for j in pos + 1..threshold {
                        indices[j] = indices[j - 1] + 1;
                    }
                    continue 'combos;
                }
            }
        }
        worker.recycle(partial);
        Ok(())
    }
}

/// `C(n, k)` with overflow treated as "more combinations than any budget":
/// the incremental product stays exactly divisible (a product of `i + 1`
/// consecutive integers is divisible by `(i + 1)!`), so the only failure
/// mode is the multiplication itself overflowing — in that case the true
/// count exceeds `u128::MAX / n`, far beyond any configurable
/// `max_combinations`, and `u128::MAX` is returned so the budget check
/// fires instead of silently under-reporting (as `saturating_mul`
/// followed by division used to).
fn binomial(n: u128, k: u128) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        match result.checked_mul(n - i) {
            Some(product) => result = product / (i + 1),
            None => return u128::MAX,
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdft_ft::{FaultTreeBuilder, Scenario};

    fn example1() -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        let a = b.static_event("a", 3e-3).unwrap();
        let bb = b.static_event("b", 1e-3).unwrap();
        let c = b.static_event("c", 3e-3).unwrap();
        let d = b.static_event("d", 1e-3).unwrap();
        let e = b.static_event("e", 3e-6).unwrap();
        let p1 = b.or("pump1", [a, bb]).unwrap();
        let p2 = b.or("pump2", [c, d]).unwrap();
        let pumps = b.and("pumps", [p1, p2]).unwrap();
        let top = b.or("cooling", [pumps, e]).unwrap();
        b.top(top);
        b.build().unwrap()
    }

    fn mcs_names(tree: &FaultTree, list: &CutsetList) -> Vec<Vec<String>> {
        let mut v: Vec<Vec<String>> = list
            .iter()
            .map(|c| {
                c.events()
                    .iter()
                    .map(|&e| tree.name(e).to_owned())
                    .collect()
            })
            .collect();
        v.sort();
        v
    }

    /// Brute-force minimal cutsets by enumerating all scenarios.
    fn brute_force_mcs(tree: &FaultTree) -> Vec<Vec<String>> {
        let events: Vec<NodeId> = tree.basic_events().collect();
        assert!(events.len() <= 16);
        let mut failing: Vec<u32> = Vec::new();
        for mask in 0u32..(1 << events.len()) {
            let scenario = Scenario::from_events(
                tree,
                events
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &e)| e),
            );
            if tree.fails(tree.top(), &scenario) {
                failing.push(mask);
            }
        }
        let mut minimal: Vec<u32> = Vec::new();
        for &m in &failing {
            if !failing.iter().any(|&o| o != m && o & m == o) {
                minimal.push(m);
            }
        }
        let mut out: Vec<Vec<String>> = minimal
            .iter()
            .map(|&m| {
                events
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| m >> i & 1 == 1)
                    .map(|(_, &e)| tree.name(e).to_owned())
                    .collect()
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn example7_minimal_cutsets() {
        let t = example1();
        let probs = EventProbabilities::from_static(&t).unwrap();
        let mcs = minimal_cutsets(&t, &probs, &MocusOptions::default()).unwrap();
        assert_eq!(
            mcs_names(&t, &mcs),
            vec![
                vec!["a".to_owned(), "c".to_owned()],
                vec!["a".to_owned(), "d".to_owned()],
                vec!["b".to_owned(), "c".to_owned()],
                vec!["b".to_owned(), "d".to_owned()],
                vec!["e".to_owned()],
            ]
        );
    }

    #[test]
    fn matches_brute_force_on_example1() {
        let t = example1();
        let probs = EventProbabilities::from_static(&t).unwrap();
        let mcs = minimal_cutsets(&t, &probs, &MocusOptions::exhaustive()).unwrap();
        assert_eq!(mcs_names(&t, &mcs), brute_force_mcs(&t));
    }

    #[test]
    fn cutoff_prunes_low_probability_cutsets() {
        let t = example1();
        let probs = EventProbabilities::from_static(&t).unwrap();
        // 5e-6 keeps only {a,c} (9e-6); {e} is 3e-6, {a,d},{b,c} are 3e-6,
        // {b,d} is 1e-6.
        let mcs = minimal_cutsets(&t, &probs, &MocusOptions::with_cutoff(5e-6)).unwrap();
        assert_eq!(
            mcs_names(&t, &mcs),
            vec![vec!["a".to_owned(), "c".to_owned()]]
        );
    }

    #[test]
    fn max_order_keeps_only_short_cutsets() {
        let t = example1();
        let probs = EventProbabilities::from_static(&t).unwrap();
        let opts = MocusOptions {
            max_order: Some(1),
            ..MocusOptions::exhaustive()
        };
        let mcs = minimal_cutsets(&t, &probs, &opts).unwrap();
        assert_eq!(mcs_names(&t, &mcs), vec![vec!["e".to_owned()]]);
    }

    #[test]
    fn rare_event_approximation_matches_paper_structure() {
        let t = example1();
        let probs = EventProbabilities::from_static(&t).unwrap();
        let mcs = minimal_cutsets(&t, &probs, &MocusOptions::default()).unwrap();
        let rea = mcs.rare_event_approximation(|e| probs.get(e));
        // Σ = 3e-6 + 9e-6 + 3e-6 + 3e-6 + 1e-6 = 1.9e-5
        assert!((rea - 1.9e-5).abs() < 1e-12);
        // REA over-approximates the exact probability.
        let exact = t.exact_static_probability().unwrap();
        assert!(rea >= exact);
        assert!((rea - exact) / exact < 0.01);
    }

    #[test]
    fn atleast_gate_produces_pairs() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let y = b.static_event("y", 0.1).unwrap();
        let z = b.static_event("z", 0.1).unwrap();
        let g = b.atleast("g", 2, [x, y, z]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        let probs = EventProbabilities::from_static(&t).unwrap();
        let mcs = minimal_cutsets(&t, &probs, &MocusOptions::exhaustive()).unwrap();
        assert_eq!(mcs.len(), 3);
        assert_eq!(mcs_names(&t, &mcs), brute_force_mcs(&t));
    }

    #[test]
    fn atleast_gate_with_cutoff_keeps_reachable_combos() {
        // The look-ahead bound must respect voting gates: 2-of-3 with
        // probabilities 0.1 has best pair 0.01.
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let y = b.static_event("y", 0.1).unwrap();
        let z = b.static_event("z", 0.01).unwrap();
        let g = b.atleast("g", 2, [x, y, z]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        let probs = EventProbabilities::from_static(&t).unwrap();
        let mcs = minimal_cutsets(&t, &probs, &MocusOptions::with_cutoff(5e-3)).unwrap();
        assert_eq!(
            mcs_names(&t, &mcs),
            vec![vec!["x".to_owned(), "y".to_owned()]]
        );
    }

    #[test]
    fn shared_subtree_events_deduplicate() {
        // AND(OR(x,y), x): with x failed both hold, so {x} is the single
        // MCS.
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let y = b.static_event("y", 0.1).unwrap();
        let g = b.or("g", [x, y]).unwrap();
        let top = b.and("top", [g, x]).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let probs = EventProbabilities::from_static(&t).unwrap();
        let mcs = minimal_cutsets(&t, &probs, &MocusOptions::exhaustive()).unwrap();
        assert_eq!(mcs_names(&t, &mcs), vec![vec!["x".to_owned()]]);
        assert_eq!(mcs_names(&t, &mcs), brute_force_mcs(&t));
    }

    #[test]
    fn shared_events_with_cutoff_are_not_over_pruned() {
        // top = AND(g1, g2) with g1 = OR(x), g2 = OR(x): the only MCS is
        // {x} with probability p(x). A naive lookahead product
        // p(x)·p(x) = 1e-4 would wrongly prune it under a 1e-3 cutoff;
        // the disjointness test must prevent that.
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.01).unwrap();
        let g1 = b.or("g1", [x]).unwrap();
        let g2 = b.or("g2", [x]).unwrap();
        let top = b.and("top", [g1, g2]).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let probs = EventProbabilities::from_static(&t).unwrap();
        let mcs = minimal_cutsets(&t, &probs, &MocusOptions::with_cutoff(1e-3)).unwrap();
        assert_eq!(mcs_names(&t, &mcs), vec![vec!["x".to_owned()]]);
    }

    #[test]
    fn lookahead_prunes_unreachable_branches() {
        // AND of two independent pairs: every cutset has probability
        // 1e-4 · 1e-4 = 1e-8; a 1e-6 cutoff keeps nothing, and the bound
        // must discover this before expanding the whole product.
        let mut b = FaultTreeBuilder::new();
        let x1 = b.static_event("x1", 1e-4).unwrap();
        let x2 = b.static_event("x2", 1e-4).unwrap();
        let y1 = b.static_event("y1", 1e-4).unwrap();
        let y2 = b.static_event("y2", 1e-4).unwrap();
        let g1 = b.or("g1", [x1, x2]).unwrap();
        let g2 = b.or("g2", [y1, y2]).unwrap();
        let top = b.and("top", [g1, g2]).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let probs = EventProbabilities::from_static(&t).unwrap();
        let opts = MocusOptions {
            max_partials: 3,
            ..MocusOptions::with_cutoff(1e-6)
        };
        // With the bound, the initial partial dies immediately — well
        // within the tiny partial budget.
        let mcs = minimal_cutsets(&t, &probs, &opts).unwrap();
        assert!(mcs.is_empty());
    }

    #[test]
    fn assumptions_restrict_the_function() {
        // AND(x, OR(y, z)): assuming y failed leaves {x}; assuming y and z
        // functional leaves nothing.
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let y = b.static_event("y", 0.1).unwrap();
        let z = b.static_event("z", 0.1).unwrap();
        let g = b.or("g", [y, z]).unwrap();
        let top = b.and("top", [x, g]).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let probs = EventProbabilities::from_static(&t).unwrap();

        let mut assume = Assumptions::new(&t);
        assume.assume_failed(y).unwrap();
        let mcs = minimal_cutsets_with(&t, &probs, &MocusOptions::exhaustive(), &assume).unwrap();
        assert_eq!(mcs_names(&t, &mcs), vec![vec!["x".to_owned()]]);

        let mut assume = Assumptions::new(&t);
        assume.assume_ok(y).unwrap();
        assume.assume_ok(z).unwrap();
        let mcs = minimal_cutsets_with(&t, &probs, &MocusOptions::exhaustive(), &assume).unwrap();
        assert!(mcs.is_empty());
    }

    #[test]
    fn assumptions_on_atleast_adjust_threshold() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let y = b.static_event("y", 0.1).unwrap();
        let z = b.static_event("z", 0.1).unwrap();
        let g = b.atleast("g", 2, [x, y, z]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        let probs = EventProbabilities::from_static(&t).unwrap();

        let mut assume = Assumptions::new(&t);
        assume.assume_failed(x).unwrap();
        let mcs = minimal_cutsets_with(&t, &probs, &MocusOptions::exhaustive(), &assume).unwrap();
        // One more failure suffices.
        assert_eq!(
            mcs_names(&t, &mcs),
            vec![vec!["y".to_owned()], vec!["z".to_owned()]]
        );

        let mut assume = Assumptions::new(&t);
        assume.assume_ok(x).unwrap();
        assume.assume_ok(y).unwrap();
        let mcs = minimal_cutsets_with(&t, &probs, &MocusOptions::exhaustive(), &assume).unwrap();
        // 2-of-3 with two inputs functional can never fail.
        assert!(mcs.is_empty());
    }

    #[test]
    fn rooted_generation_works_on_gates_and_events() {
        let t = example1();
        let probs = EventProbabilities::from_static(&t).unwrap();
        let p1 = t.node_by_name("pump1").unwrap();
        let mcs = minimal_cutsets_rooted(
            &t,
            p1,
            &probs,
            &MocusOptions::exhaustive(),
            &Assumptions::new(&t),
        )
        .unwrap();
        assert_eq!(
            mcs_names(&t, &mcs),
            vec![vec!["a".to_owned()], vec!["b".to_owned()]]
        );
        // An event root yields the singleton cutset.
        let a = t.node_by_name("a").unwrap();
        let mcs = minimal_cutsets_rooted(
            &t,
            a,
            &probs,
            &MocusOptions::exhaustive(),
            &Assumptions::new(&t),
        )
        .unwrap();
        assert_eq!(mcs.len(), 1);
        assert_eq!(mcs.get(0).unwrap().events(), &[a]);
        // An assumed-failed event root yields the empty cutset.
        let mut assume = Assumptions::new(&t);
        assume.assume_failed(a).unwrap();
        let mcs =
            minimal_cutsets_rooted(&t, a, &probs, &MocusOptions::exhaustive(), &assume).unwrap();
        assert_eq!(mcs.len(), 1);
        assert!(mcs.get(0).unwrap().is_empty());
    }

    #[test]
    fn conflicting_assumptions_are_rejected() {
        let t = example1();
        let x = t.node_by_name("a").unwrap();
        let mut assume = Assumptions::new(&t);
        assume.assume_failed(x).unwrap();
        assert!(matches!(
            assume.assume_ok(x),
            Err(MocusError::ConflictingAssumption { .. })
        ));
    }

    #[test]
    fn assumptions_on_gates_are_rejected() {
        let t = example1();
        let probs = EventProbabilities::from_static(&t).unwrap();
        let g = t.node_by_name("pumps").unwrap();
        let mut assume = Assumptions::new(&t);
        assume.assume_failed(g).unwrap(); // not validated until use
        assert!(matches!(
            minimal_cutsets_with(&t, &probs, &MocusOptions::default(), &assume),
            Err(MocusError::AssumptionOnGate { .. })
        ));
    }

    #[test]
    fn rejects_invalid_cutoff_and_enforces_budgets() {
        let t = example1();
        let probs = EventProbabilities::from_static(&t).unwrap();
        assert!(matches!(
            minimal_cutsets(&t, &probs, &MocusOptions::with_cutoff(f64::NAN)),
            Err(MocusError::InvalidCutoff { .. })
        ));
        let opts = MocusOptions {
            max_partials: 2,
            ..MocusOptions::exhaustive()
        };
        assert!(matches!(
            minimal_cutsets(&t, &probs, &opts),
            Err(MocusError::TooManyPartials { limit: 2 })
        ));
        let opts = MocusOptions {
            max_cutsets: 1,
            ..MocusOptions::exhaustive()
        };
        assert!(matches!(
            minimal_cutsets(&t, &probs, &opts),
            Err(MocusError::TooManyCutsets { limit: 1 })
        ));
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(60, 30), 118_264_581_564_861_424);
    }

    #[test]
    fn binomial_overflow_is_conservative() {
        // C(140, 70) ≈ 9.4·10⁴⁰ exceeds u128; the count must saturate to
        // u128::MAX so the `max_combinations` budget fires, rather than
        // silently under-reporting through `saturating_mul` + division.
        assert_eq!(binomial(140, 70), u128::MAX);
        // Intermediate overflow is also conservative: C(130, 65) fits in
        // u128 but its incremental product does not, and over-reporting
        // only makes the budget trip earlier.
        assert_eq!(binomial(130, 65), u128::MAX);
        // Large values that never overflow stay exact.
        assert_eq!(binomial(100, 3), 161_700);
    }

    #[test]
    fn deep_and_chain_produces_single_cutset() {
        let mut b = FaultTreeBuilder::new();
        let mut inputs = Vec::new();
        for i in 0..50 {
            inputs.push(b.static_event(&format!("e{i}"), 0.5).unwrap());
        }
        let mut gate = b.and("g0", [inputs[0], inputs[1]]).unwrap();
        for (i, &e) in inputs.iter().enumerate().skip(2) {
            gate = b.and(&format!("g{}", i - 1), [gate, e]).unwrap();
        }
        b.top(gate);
        let t = b.build().unwrap();
        let probs = EventProbabilities::from_static(&t).unwrap();
        let mcs = minimal_cutsets(&t, &probs, &MocusOptions::exhaustive()).unwrap();
        assert_eq!(mcs.len(), 1);
        assert_eq!(mcs.get(0).unwrap().order(), 50);
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use sdft_ft::FaultTreeBuilder;

    /// A moderately wide tree with shared events, an at-least gate and
    /// enough structure to exercise seeding and stealing.
    fn wide_tree() -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        let mut lines = Vec::new();
        let shared = b.static_event("shared", 0.02).unwrap();
        for i in 0..6 {
            let x = b.static_event(&format!("x{i}"), 0.01).unwrap();
            let y = b.static_event(&format!("y{i}"), 0.02).unwrap();
            let z = b.static_event(&format!("z{i}"), 0.03).unwrap();
            let inner = b.or(&format!("or{i}"), [x, y]).unwrap();
            lines.push(b.and(&format!("line{i}"), [inner, z]).unwrap());
        }
        let vote_a = b.static_event("va", 0.1).unwrap();
        let vote_b = b.static_event("vb", 0.1).unwrap();
        let vote_c = b.static_event("vc", 0.1).unwrap();
        let vote = b.atleast("vote", 2, [vote_a, vote_b, vote_c]).unwrap();
        lines.push(vote);
        lines.push(shared);
        let top = b.or("top", lines).unwrap();
        b.top(top);
        b.build().unwrap()
    }

    #[test]
    fn thread_counts_agree_bitwise() {
        let t = wide_tree();
        let probs = EventProbabilities::from_static(&t).unwrap();
        for options in [
            MocusOptions::exhaustive(),
            MocusOptions::with_cutoff(1e-4),
            MocusOptions::default(),
        ] {
            let base = MocusOptions {
                threads: 1,
                ..options
            };
            let (reference, ref_stats) = minimal_cutsets_with_stats(&t, &probs, &base).unwrap();
            for threads in [2, 4, 8] {
                let opts = MocusOptions { threads, ..options };
                let (mcs, stats) = minimal_cutsets_with_stats(&t, &probs, &opts).unwrap();
                assert_eq!(reference, mcs, "threads = {threads}");
                assert_eq!(
                    ref_stats.deterministic(),
                    stats.deterministic(),
                    "threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn budgets_abort_under_parallelism() {
        let t = wide_tree();
        let probs = EventProbabilities::from_static(&t).unwrap();
        for threads in [2, 4, 8] {
            let opts = MocusOptions {
                max_partials: 3,
                threads,
                ..MocusOptions::exhaustive()
            };
            assert!(matches!(
                minimal_cutsets(&t, &probs, &opts),
                Err(MocusError::TooManyPartials { limit: 3 })
            ));
            let opts = MocusOptions {
                max_cutsets: 2,
                threads,
                ..MocusOptions::exhaustive()
            };
            assert!(matches!(
                minimal_cutsets(&t, &probs, &opts),
                Err(MocusError::TooManyCutsets { limit: 2 })
            ));
        }
    }

    #[test]
    fn stats_count_the_sequential_run() {
        let t = wide_tree();
        let probs = EventProbabilities::from_static(&t).unwrap();
        let opts = MocusOptions {
            threads: 1,
            ..MocusOptions::exhaustive()
        };
        let (mcs, stats) = minimal_cutsets_with_stats(&t, &probs, &opts).unwrap();
        assert!(stats.partials_processed > 0);
        assert!(stats.cutset_candidates as usize >= mcs.len());
        assert!(stats.subsumption_comparisons > 0);
        assert_eq!(stats.stolen_tasks, 0);
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.seed_tasks, 1);
    }
}

#[cfg(test)]
mod lookahead_tests {
    use super::*;
    use sdft_ft::FaultTreeBuilder;

    #[test]
    fn disabling_lookahead_changes_nothing_semantically() {
        let mut b = FaultTreeBuilder::new();
        let mut pairs = Vec::new();
        for i in 0..3 {
            let x = b.static_event(&format!("x{i}"), 1e-2).unwrap();
            let y = b.static_event(&format!("y{i}"), 1e-3).unwrap();
            pairs.push(b.or(&format!("g{i}"), [x, y]).unwrap());
        }
        let top = b.and("top", pairs).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let probs = EventProbabilities::from_static(&t).unwrap();
        let with = minimal_cutsets(&t, &probs, &MocusOptions::with_cutoff(1e-7)).unwrap();
        let opts = MocusOptions {
            lookahead: false,
            ..MocusOptions::with_cutoff(1e-7)
        };
        let without = minimal_cutsets(&t, &probs, &opts).unwrap();
        let mut a: Vec<&Cutset> = with.iter().collect();
        let mut b: Vec<&Cutset> = without.iter().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn lookahead_reduces_explored_partials() {
        // A wide AND of improbable ORs: without the bound every branch of
        // the first gates is explored; with it the root dies instantly.
        let mut b = FaultTreeBuilder::new();
        let mut gates = Vec::new();
        for i in 0..4 {
            let inputs: Vec<_> = (0..8)
                .map(|j| b.static_event(&format!("e{i}_{j}"), 1e-4).unwrap())
                .collect();
            gates.push(b.or(&format!("g{i}"), inputs).unwrap());
        }
        let top = b.and("top", gates).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let probs = EventProbabilities::from_static(&t).unwrap();
        // Every cutset has probability 1e-16 < 1e-12: nothing survives.
        let tight = MocusOptions {
            max_partials: 5,
            ..MocusOptions::with_cutoff(1e-12)
        };
        assert!(minimal_cutsets(&t, &probs, &tight).unwrap().is_empty());
        let blind = MocusOptions {
            max_partials: 5,
            lookahead: false,
            ..MocusOptions::with_cutoff(1e-12)
        };
        assert!(matches!(
            minimal_cutsets(&t, &probs, &blind),
            Err(MocusError::TooManyPartials { .. })
        ));
    }
}
