/// Tuning options for the MOCUS cutset generator.
///
/// The defaults match the paper's experimental setup: cutoff `10⁻¹⁵`, no
/// order limit, and generous safety budgets for pathological inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MocusOptions {
    /// Discard any (partial) cutset whose probability is not strictly
    /// above this value; `None` disables probabilistic pruning.
    ///
    /// For coherent trees the cutoff is conservative: refining a partial
    /// cutset can only multiply its probability by further factors ≤ 1, so
    /// no cutset above the cutoff is ever lost (§IV-B).
    pub cutoff: Option<f64>,
    /// Discard any (partial) cutset with more events than this.
    pub max_order: Option<usize>,
    /// Abort once more than this many cutset candidates were generated.
    pub max_cutsets: usize,
    /// Abort once more than this many partial cutsets were processed.
    pub max_partials: usize,
    /// Abort when a single at-least gate would expand into more than this
    /// many combinations.
    pub max_combinations: u128,
    /// Enable the look-ahead bound: partial cutsets whose pending gates
    /// can no longer reach the cutoff are pruned using per-gate
    /// best-completion bounds over disjoint subtrees. Sound; disable only
    /// to measure its effect (it routinely cuts the explored partial
    /// space by orders of magnitude on event-tree-shaped models).
    pub lookahead: bool,
    /// Worker threads for cutset expansion and minimization; `0` uses all
    /// available cores. The resulting cutset list is identical for every
    /// thread count (expansion and pruning decisions are per-branch and
    /// order-independent, and the merged list is canonically sorted), so
    /// this is purely a performance knob.
    pub threads: usize,
}

impl Default for MocusOptions {
    fn default() -> Self {
        MocusOptions {
            cutoff: Some(1e-15),
            max_order: None,
            max_cutsets: 10_000_000,
            max_partials: 200_000_000,
            max_combinations: 1_000_000,
            lookahead: true,
            threads: 0,
        }
    }
}

impl MocusOptions {
    /// Options with the given cutoff and all other fields at their
    /// defaults.
    #[must_use]
    pub fn with_cutoff(cutoff: f64) -> Self {
        MocusOptions {
            cutoff: Some(cutoff),
            ..Self::default()
        }
    }

    /// Options with pruning disabled (exact minimal cutsets).
    #[must_use]
    pub fn exhaustive() -> Self {
        MocusOptions {
            cutoff: None,
            ..Self::default()
        }
    }
}
