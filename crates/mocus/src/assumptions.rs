use crate::error::MocusError;
use sdft_ft::{FaultTree, NodeId};

/// Truth-value assumptions on basic events, used to generate minimal
/// cutsets of a *restricted* fault tree function.
///
/// The SD analysis uses assumptions when quantifying a minimal cutset
/// (§V-C step 2): static events of the cutset are assumed failed, and
/// events outside the relevant set `Rel_a` are assumed functional.
///
/// # Example
///
/// ```
/// # use sdft_ft::{EventProbabilities, FaultTreeBuilder};
/// # use sdft_mocus::{minimal_cutsets_with, Assumptions, MocusOptions};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = FaultTreeBuilder::new();
/// let x = b.static_event("x", 0.1)?;
/// let y = b.static_event("y", 0.1)?;
/// let g = b.and("g", [x, y])?;
/// b.top(g);
/// let tree = b.build()?;
/// let probs = EventProbabilities::from_static(&tree)?;
/// let mut assume = Assumptions::new(&tree);
/// assume.assume_failed(x)?;
/// // With x failed, {y} alone is a minimal cutset.
/// let mcs = minimal_cutsets_with(&tree, &probs, &MocusOptions::default(), &assume)?;
/// assert_eq!(mcs.len(), 1);
/// assert_eq!(mcs.get(0).unwrap().order(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assumptions {
    failed: Vec<bool>,
    ok: Vec<bool>,
}

impl Assumptions {
    /// No assumptions, sized for `tree`.
    #[must_use]
    pub fn new(tree: &FaultTree) -> Self {
        Assumptions {
            failed: vec![false; tree.len()],
            ok: vec![false; tree.len()],
        }
    }

    /// Assume basic event `event` failed (substitute *true*).
    ///
    /// # Errors
    ///
    /// Returns an error if the event was already assumed functional.
    ///
    /// # Panics
    ///
    /// Panics if `event` is out of range for the originating tree.
    pub fn assume_failed(&mut self, event: NodeId) -> Result<&mut Self, MocusError> {
        if self.ok[event.index()] {
            return Err(MocusError::ConflictingAssumption {
                name: event.to_string(),
            });
        }
        self.failed[event.index()] = true;
        Ok(self)
    }

    /// Assume basic event `event` functional (substitute *false*).
    ///
    /// # Errors
    ///
    /// Returns an error if the event was already assumed failed.
    ///
    /// # Panics
    ///
    /// Panics if `event` is out of range for the originating tree.
    pub fn assume_ok(&mut self, event: NodeId) -> Result<&mut Self, MocusError> {
        if self.failed[event.index()] {
            return Err(MocusError::ConflictingAssumption {
                name: event.to_string(),
            });
        }
        self.ok[event.index()] = true;
        Ok(self)
    }

    /// Whether `event` is assumed failed.
    #[must_use]
    pub fn is_failed(&self, event: NodeId) -> bool {
        self.failed[event.index()]
    }

    /// Whether `event` is assumed functional.
    #[must_use]
    pub fn is_ok(&self, event: NodeId) -> bool {
        self.ok[event.index()]
    }

    /// Whether no assumptions were made.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        !self.failed.iter().any(|&f| f) && !self.ok.iter().any(|&f| f)
    }

    /// Validate that assumptions only touch basic events of `tree`.
    ///
    /// # Errors
    ///
    /// Returns an error naming the first gate with an assumption.
    pub fn validate(&self, tree: &FaultTree) -> Result<(), MocusError> {
        for id in tree.node_ids() {
            if (self.failed[id.index()] || self.ok[id.index()]) && tree.is_gate(id) {
                return Err(MocusError::AssumptionOnGate {
                    name: tree.name(id).to_owned(),
                });
            }
        }
        Ok(())
    }
}
