//! Offline stand-in for `criterion` implementing the API surface this
//! workspace uses: [`criterion_group!`]/[`criterion_main!`], benchmark
//! groups, [`Bencher::iter`], and [`BenchmarkId`]. Timing is a simple
//! best-of-N wall-clock measurement printed to stdout — enough to track
//! relative performance without the upstream statistics machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// A benchmark label, either a bare name or `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            label: name.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Runs closures and reports the fastest observed iteration.
#[derive(Debug, Default)]
pub struct Bencher {
    best: Option<Duration>,
    iterations: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call, then measure until the budget is spent.
        std::hint::black_box(routine());
        let started = Instant::now();
        while started.elapsed() < MEASURE_BUDGET {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            let elapsed = t0.elapsed();
            self.iterations += 1;
            if self.best.is_none_or(|best| elapsed < best) {
                self.best = Some(elapsed);
            }
        }
    }
}

/// A named collection of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes runs by time.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, mut routine: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::default();
        routine(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut routine: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        let mut bencher = Bencher::default();
        routine(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        match bencher.best {
            Some(best) => println!(
                "{}/{}: best {:?} over {} iterations",
                self.name, id.label, best, bencher.iterations
            ),
            None => println!("{}/{}: no measurements", self.name, id.label),
        }
    }

    pub fn finish(self) {}
}

/// Entry point handed to each benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    pub fn bench_function<I, F>(&mut self, id: I, routine: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, routine);
        self
    }
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut bencher = Bencher::default();
        bencher.iter(|| 1 + 1);
        assert!(bencher.iterations > 0);
        assert!(bencher.best.is_some());
    }

    #[test]
    fn groups_run_their_functions() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        let mut ran = false;
        group.bench_function("f", |b| {
            ran = true;
            b.iter(|| std::hint::black_box(2 * 2));
        });
        group.bench_with_input(BenchmarkId::new("f", 3), &3, |b, &x| {
            b.iter(|| std::hint::black_box(x * x));
        });
        group.finish();
        assert!(ran);
    }
}
