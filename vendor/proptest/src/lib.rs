//! Offline stand-in for `proptest` implementing the API surface this
//! workspace uses: the [`proptest!`] macro, the [`strategy::Strategy`]
//! trait with `prop_map`, range / tuple / collection / sample / string
//! strategies, [`arbitrary::any`], and the `prop_assert*` macros.
//!
//! Cases are generated from a deterministic seeded stream; assertions
//! are plain panics, which the harness reports like any failing test.
//! Seeds recorded in a sibling `.proptest-regressions` file (upstream's
//! `cc <hex>` persistence format) are replayed *before* the random
//! cases, so committed failure seeds keep running in CI. There is no
//! shrinking and no automatic persistence of new failures.

pub mod test_runner {
    /// Per-test configuration; only `cases` is interpreted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The deterministic generator driving all strategies
    /// (xoshiro256++ seeded via splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// A generator seeded from the test name, so every test sees an
        /// independent but reproducible stream.
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            let mut state = 0xC0FF_EE00_D15E_A5E5;
            for byte in name.bytes() {
                state = (state ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01B3);
            }
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            TestRng { s }
        }

        /// A generator resuming from an explicit xoshiro256++ state, as
        /// recorded in a `.proptest-regressions` file. The all-zero
        /// state (a fixed point of the generator) is nudged to a fixed
        /// nonzero one.
        #[must_use]
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                let mut state = 0x5EED;
                let s = [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ];
                return TestRng { s };
            }
            TestRng { s }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Seeds recorded for the test source file `source_file` (as given
    /// by `file!()`): reads the sibling `<stem>.proptest-regressions`
    /// file in upstream's persistence format and returns every `cc`
    /// entry's RNG state. Missing or unreadable files yield no seeds —
    /// replay is strictly additive.
    #[must_use]
    pub fn load_regressions(source_file: &str) -> Vec<[u64; 4]> {
        let path = match source_file.strip_suffix(".rs") {
            Some(stem) => format!("{stem}.proptest-regressions"),
            None => return Vec::new(),
        };
        match std::fs::read_to_string(path) {
            Ok(text) => parse_regression_seeds(&text),
            Err(_) => Vec::new(),
        }
    }

    /// Parse upstream's `.proptest-regressions` body: lines of
    /// `cc <64 hex digits> # comment`; everything else is ignored.
    #[must_use]
    pub fn parse_regression_seeds(text: &str) -> Vec<[u64; 4]> {
        let mut out = Vec::new();
        for line in text.lines() {
            let mut tokens = line.split_whitespace();
            if tokens.next() != Some("cc") {
                continue;
            }
            let Some(hex) = tokens.next() else { continue };
            if hex.len() != 64 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
                continue;
            }
            let mut seed = [0u64; 4];
            for (i, word) in seed.iter_mut().enumerate() {
                *word = u64::from_str_radix(&hex[i * 16..(i + 1) * 16], 16)
                    .expect("validated hex digits");
            }
            out.push(seed);
        }
        out
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map {
                source: self,
                map: f,
            }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + i128::from(rng.below(span))) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + i128::from(rng.below(span))) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "cannot sample empty range");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }

    /// Strings from a regex-shaped pattern. Only the pattern shapes the
    /// repo's fuzz tests use are interpreted: an optional leading
    /// character class (`.` or a `[^...]` exclusion) followed by a
    /// `{lo,hi}` repetition. Anything else degrades to short printable
    /// noise, which is all the fuzz targets need.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = repetition_bounds(self).unwrap_or((0, 8));
            let excluded: Vec<char> = excluded_chars(self);
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            let mut out = String::with_capacity(len);
            while out.chars().count() < len {
                let c = random_char(rng);
                if !excluded.contains(&c) {
                    out.push(c);
                }
            }
            out
        }
    }

    fn repetition_bounds(pattern: &str) -> Option<(usize, usize)> {
        let open = pattern.rfind('{')?;
        let close = pattern[open..].find('}')? + open;
        let body = &pattern[open + 1..close];
        let (lo, hi) = body.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    fn excluded_chars(pattern: &str) -> Vec<char> {
        let mut out = Vec::new();
        if let Some(open) = pattern.find("[^") {
            if let Some(close) = pattern[open..].find(']') {
                let class = &pattern[open + 2..open + close];
                let mut chars = class.chars().peekable();
                while let Some(c) = chars.next() {
                    if c == '\\' {
                        match chars.next() {
                            Some('n') => out.push('\n'),
                            Some('t') => out.push('\t'),
                            Some('r') => out.push('\r'),
                            Some(other) => out.push(other),
                            None => {}
                        }
                    } else {
                        out.push(c);
                    }
                }
            }
        }
        // `.` never matches a newline in regex default mode.
        if !out.contains(&'\n') {
            out.push('\n');
        }
        out
    }

    fn random_char(rng: &mut TestRng) -> char {
        const EXOTIC: [char; 8] = ['é', 'λ', '中', '∞', '\t', '"', '\\', '\u{1F600}'];
        if rng.below(8) == 0 {
            EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
        } else {
            // Printable ASCII.
            char::from(0x20 + rng.below(0x5f) as u8)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// Uniform choice among `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "cannot select from no options");
        Select { options }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of upstream's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Generate `cases` inputs per test and run the body on each.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (
        @with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                // Replay recorded failure seeds before the random cases,
                // so committed `.proptest-regressions` entries keep
                // running in CI.
                for seed in $crate::test_runner::load_regressions(file!()) {
                    let mut rng = $crate::test_runner::TestRng::from_state(seed);
                    let ($($pat,)+) = (
                        $($crate::strategy::Strategy::generate(&($strategy), &mut rng),)+
                    );
                    $body
                }
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _ in 0..config.cases {
                    let ($($pat,)+) = (
                        $($crate::strategy::Strategy::generate(&($strategy), &mut rng),)+
                    );
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples_generate_in_bounds(
            (small, xs) in (0u8..3, prop::collection::vec(0usize..100, 1..5)),
            f in 0.25f64..=0.75,
        ) {
            prop_assert!(small < 3);
            prop_assert!((1..5).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&x| x < 100));
            prop_assert!((0.25..=0.75).contains(&f));
        }

        #[test]
        fn map_and_select_compose(
            word in prop::sample::select(vec!["alpha", "beta"]),
            doubled in (1u32..10).prop_map(|x| x * 2),
        ) {
            prop_assert!(word == "alpha" || word == "beta");
            prop_assert!(doubled % 2 == 0 && doubled < 20);
            prop_assert_ne!(doubled, 1);
        }

        #[test]
        fn string_patterns_respect_length_and_exclusions(
            free in ".{0,40}",
            line in "[^\n]{1,10}",
        ) {
            prop_assert!(free.chars().count() <= 40);
            prop_assert!(!free.contains('\n'));
            let n = line.chars().count();
            prop_assert!((1..=10).contains(&n), "bad length {}", n);
            prop_assert!(!line.contains('\n'));
        }
    }

    #[test]
    fn regression_seeds_parse_from_persistence_format() {
        let text = "\
# Seeds for failure cases proptest has generated.
# shorter comment lines
cc b1fc6667ab180ba82b40c5f1270a00c32f9343f5ae3e96f6f6ff517f0168e9a8 # shrinks to x = 1
cc deadbeef # too short, ignored
not a cc line
cc b993b038210ced1ff0730722d08c7eca7951b07788e28756f912dbd25ae43807
";
        let seeds = crate::test_runner::parse_regression_seeds(text);
        assert_eq!(seeds.len(), 2);
        assert_eq!(seeds[0][0], 0xb1fc_6667_ab18_0ba8);
        assert_eq!(seeds[0][3], 0xf6ff_517f_0168_e9a8);
        assert_eq!(seeds[1][0], 0xb993_b038_210c_ed1f);
        // Replayed streams are deterministic functions of the seed.
        let mut a = crate::test_runner::TestRng::from_state(seeds[0]);
        let mut b = crate::test_runner::TestRng::from_state(seeds[0]);
        assert_eq!(a.next_u64(), b.next_u64());
        // The all-zero state is nudged off the generator's fixed point.
        let mut z = crate::test_runner::TestRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn streams_are_deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        let mut c = crate::test_runner::TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
