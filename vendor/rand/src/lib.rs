//! Offline stand-in for the `rand` crate implementing the API surface
//! this workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] convenience methods `gen`, `gen_range`, `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — a
//! different stream than upstream `StdRng` (ChaCha12), but all callers
//! in this repo are seeded-statistical tests or model generators that
//! only need a deterministic, well-mixed stream.

use std::ops::{Range, RangeInclusive};

/// The raw entropy source: a 64-bit generator step.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from their "natural" distribution
/// (`[0, 1)` for floats, the full domain for integers and bools).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] like upstream `rand::Rng`.
pub trait Rng: RngCore {
    /// A value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A value uniform over `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range_and_look_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_respect_their_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..7);
            assert!((3..7).contains(&v));
            let w = rng.gen_range(1..=2);
            assert!((1..=2).contains(&w));
            let x = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let i: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits} hits");
    }
}
