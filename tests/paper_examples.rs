//! The concrete facts stated in the paper's running examples (§II–§V,
//! Examples 1–11), verified against this implementation.

use sdft::core::{
    analyze, classify_gate, quantify_cutset, AnalysisOptions, FtcContext, QuantifyOptions,
    TriggerClass,
};
use sdft::ctmc::erlang;
use sdft::ft::{Cutset, EventProbabilities, FaultTree, FaultTreeBuilder, NodeId, Scenario};
use sdft::mocus::{minimal_cutsets, MocusOptions};
use sdft::models::toy;
use sdft::product::{ProductChain, ProductOptions};

fn names(tree: &FaultTree, cutset: &Cutset) -> Vec<String> {
    cutset
        .events()
        .iter()
        .map(|&e| tree.name(e).to_owned())
        .collect()
}

/// Example 1: `p({a,d}) ≈ 2.988·10⁻⁶`.
#[test]
fn example1_scenario_probability() {
    let tree = toy::example1();
    let a = tree.node_by_name("a").unwrap();
    let d = tree.node_by_name("d").unwrap();
    let scenario = Scenario::from_events(&tree, [a, d]);
    let p = tree.scenario_probability(&scenario).unwrap();
    assert!((p - 2.988e-6).abs() < 1e-8, "{p}");
}

/// Example 7: the minimal cutsets are {e}, {a,c}, {a,d}, {b,c}, {b,d};
/// {a,b,c} is a cutset but not minimal.
#[test]
fn example7_minimal_cutsets() {
    let tree = toy::example1();
    let probs = EventProbabilities::from_static(&tree).unwrap();
    let mcs = minimal_cutsets(&tree, &probs, &MocusOptions::exhaustive()).unwrap();
    let mut got: Vec<Vec<String>> = mcs.iter().map(|c| names(&tree, c)).collect();
    got.sort();
    assert_eq!(
        got,
        vec![
            vec!["a".to_owned(), "c".to_owned()],
            vec!["a".to_owned(), "d".to_owned()],
            vec!["b".to_owned(), "c".to_owned()],
            vec!["b".to_owned(), "d".to_owned()],
            vec!["e".to_owned()],
        ]
    );
    // {a, b, c} is a cutset (fails the top) but is subsumed by {a, c}.
    let a = tree.node_by_name("a").unwrap();
    let b = tree.node_by_name("b").unwrap();
    let c = tree.node_by_name("c").unwrap();
    let abc = Scenario::from_events(&tree, [a, b, c]);
    assert!(tree.fails(tree.top(), &abc));
    assert!(!mcs.contains_set(&Cutset::new([a, b, c])));
}

/// §IV-A: the rare-event approximation over-approximates `p(FT)` and
/// `p(C) = ∏ p(a)`.
#[test]
fn rare_event_approximation_bounds() {
    let tree = toy::example1();
    let probs = EventProbabilities::from_static(&tree).unwrap();
    let mcs = minimal_cutsets(&tree, &probs, &MocusOptions::exhaustive()).unwrap();
    let rea = mcs.rare_event_approximation(|e| probs.get(e));
    let exact = tree.exact_static_probability().unwrap();
    assert!(rea >= exact);
    assert!((rea - 1.9e-5).abs() < 1e-12);
}

/// Example 4: the failed product states listed in the paper exist and
/// are failed; Example 5/6: the evolution and update transitions carry
/// the rates 0.001 and 0.05 and the initial distribution merges updated
/// states.
#[test]
fn examples_4_5_6_product_chain() {
    let tree = toy::example3();
    let pc = ProductChain::build(&tree, &ProductOptions::default()).unwrap();
    // Component slots in id order: a, b, c, d, e. The spare pump d has
    // off states {0 ok, 1 latent} and on states {2 ok, 3 failed}.
    let tank_failure = pc
        .find_state(&[0, 0, 0, 0, 1])
        .expect("(ok,ok,ok,off,fail)");
    assert!(pc.chain().is_failed(tank_failure));
    let both_pumps = pc
        .find_state(&[1, 0, 0, 3, 0])
        .expect("(fail,ok,ok,fail,ok)");
    assert!(pc.chain().is_failed(both_pumps));

    // s1 = everything fine; b fails (rate 0.001) and d switches on.
    let s1 = pc.find_state(&[0, 0, 0, 0, 0]).unwrap();
    let s2 = pc.find_state(&[0, 1, 0, 2, 0]).unwrap();
    let rate = pc
        .chain()
        .transitions_from(s1)
        .iter()
        .find(|&&(to, _)| to == s2);
    assert_eq!(rate, Some(&(s2, 1e-3)), "R(s1, s2) = 0.001 (Example 6)");
    // And back with the repair rate 0.05: d switches off again.
    let back = pc
        .chain()
        .transitions_from(s2)
        .iter()
        .find(|&&(to, _)| to == s1);
    assert_eq!(back, Some(&(s1, 0.05)), "R(s2, s1) = 0.05 (Example 6)");

    // Example 6's initial distribution: the consistent all-fine state has
    // probability (1-p(a))(1-p(b=0 dynamic starts ok))(1-p(c))(1-p(e)).
    let nu = pc.chain().initial_probability(s1);
    let expected = (1.0 - 3e-3) * (1.0 - 3e-3) * (1.0 - 3e-6);
    assert!((nu - expected).abs() < 1e-12, "{nu} vs {expected}");
}

/// §V-A: the classification of the three trigger shapes from Example 9 —
/// static branching, static joins, and the general case.
#[test]
fn example9_classification_shapes() {
    // Static branching: OR with one dynamic child.
    let mut b = FaultTreeBuilder::new();
    let s = b.static_event("i", 0.1).unwrap();
    let g_dyn = b
        .dynamic_event("g", erlang::repairable(1, 1e-3, 0.05).unwrap())
        .unwrap();
    let branch = b.or("branching", [s, g_dyn]).unwrap();
    let j = b
        .triggered_event("j", erlang::spare(1e-3, 0.05).unwrap())
        .unwrap();
    let top = b.and("top", [branch, j]).unwrap();
    b.trigger(branch, j).unwrap();
    b.top(top);
    let t = b.build().unwrap();
    assert_eq!(
        classify_gate(&t, t.node_by_name("branching").unwrap()),
        TriggerClass::StaticBranching
    );

    // Static joins: OR with two dynamic children, no dynamic under AND.
    let mut b = FaultTreeBuilder::new();
    let e = b
        .dynamic_event("e", erlang::repairable(1, 1e-3, 0.05).unwrap())
        .unwrap();
    let f = b
        .dynamic_event("f", erlang::repairable(1, 1e-3, 0.05).unwrap())
        .unwrap();
    let joins = b.or("joins", [e, f]).unwrap();
    let g = b
        .triggered_event("g", erlang::spare(1e-3, 0.05).unwrap())
        .unwrap();
    let top = b.and("top", [joins, g]).unwrap();
    b.trigger(joins, g).unwrap();
    b.top(top);
    let t = b.build().unwrap();
    assert_eq!(
        classify_gate(&t, t.node_by_name("joins").unwrap()),
        TriggerClass::StaticJoins
    );

    // General: an AND guards a dynamic event under an OR with another
    // dynamic child (the trigger of e in Example 9).
    let mut b = FaultTreeBuilder::new();
    let bb = b
        .dynamic_event("b", erlang::repairable(1, 1e-3, 0.05).unwrap())
        .unwrap();
    let d = b.static_event("d", 0.1).unwrap();
    let a = b
        .dynamic_event("a2", erlang::repairable(1, 1e-3, 0.05).unwrap())
        .unwrap();
    let guard = b.and("guard", [bb, d]).unwrap();
    let gen = b.or("general", [guard, a]).unwrap();
    let e = b
        .triggered_event("e", erlang::spare(1e-3, 0.05).unwrap())
        .unwrap();
    let top = b.and("top", [gen, e]).unwrap();
    b.trigger(gen, e).unwrap();
    b.top(top);
    let t = b.build().unwrap();
    assert_eq!(
        classify_gate(&t, t.node_by_name("general").unwrap()),
        TriggerClass::General
    );
}

/// Example 10/11: quantifying a cutset with a static-joins trigger must
/// include the sibling dynamic event (`f` for the trigger of `g`), and
/// the general case must include the guarding events.
#[test]
fn example_10_11_ftc_contents() {
    // Static joins: trigger gate OR(e, f), cutset {e, g}.
    let mut b = FaultTreeBuilder::new();
    let e = b
        .dynamic_event("e", erlang::repairable(1, 5e-3, 0.08).unwrap())
        .unwrap();
    let f = b
        .dynamic_event("f", erlang::repairable(1, 4e-3, 0.06).unwrap())
        .unwrap();
    let joins = b.or("joins", [e, f]).unwrap();
    let g = b
        .triggered_event("g", erlang::spare(6e-3, 0.05).unwrap())
        .unwrap();
    let top = b.and("top", [joins, g]).unwrap();
    b.trigger(joins, g).unwrap();
    b.top(top);
    let t = b.build().unwrap();
    let ctx = FtcContext::new(&t).unwrap();
    let e_id = t.node_by_name("e").unwrap();
    let g_id = t.node_by_name("g").unwrap();
    let cutset = Cutset::new([e_id, g_id]);
    let q = quantify_cutset(&t, &ctx, &cutset, &QuantifyOptions::new(48.0)).unwrap();
    assert_eq!(
        q.added_dynamic, 1,
        "f is added even though it is not in the cutset"
    );
    // And the value matches the exact reference (Example 11's point:
    // without f the runs where f triggers g and is then repaired would
    // be missed).
    let pc = ProductChain::build(&t, &ProductOptions::default()).unwrap();
    let exact = pc
        .reach_events_failed_probability(&[e_id, g_id], 48.0, 1e-12)
        .unwrap();
    assert!(
        (q.probability - exact).abs() / exact < 1e-6,
        "{} vs {exact}",
        q.probability
    );
}

/// §V-B2: the worst case for a triggered event is being triggered at
/// time zero — any actual embedding yields a smaller probability.
#[test]
fn worst_case_probability_dominates() {
    let tree = toy::example3();
    let d = tree.node_by_name("d").unwrap();
    let horizon = 24.0;
    let worst = sdft::core::worst_case_probability(&tree, d, horizon, 1e-12).unwrap();
    // Actual: Pr[d ever fails] in the real tree, from the product chain
    // with failed := d failed.
    let pc = ProductChain::build(&tree, &ProductOptions::default()).unwrap();
    let actual = pc
        .reach_events_failed_probability(&[d], horizon, 1e-12)
        .unwrap();
    assert!(
        actual < worst,
        "actual {actual} must be below worst case {worst}"
    );
}

/// §V: the full analysis of the running example is sharper than the
/// static analysis and close to the exact product chain.
#[test]
fn example3_analysis_end_to_end() {
    let tree = toy::example3();
    let result = analyze(&tree, &AnalysisOptions::new(24.0)).unwrap();
    assert_eq!(result.stats.num_cutsets, 5);
    let exact =
        sdft::product::failure_probability(&tree, 24.0, &ProductOptions::default()).unwrap();
    assert!(result.frequency < result.static_rea);
    assert!((result.frequency - exact).abs() / exact < 0.05);
}

/// §V-B1: the cutoff in the translated tree is conservative — lowering
/// it can only add cutsets, never change existing ones.
#[test]
fn cutoff_is_conservative() {
    let tree = toy::example3();
    let loose = analyze(&tree, &AnalysisOptions::new(24.0)).unwrap();
    let mut opts = AnalysisOptions::new(24.0);
    opts.mocus = MocusOptions::with_cutoff(1e-5);
    let tight = analyze(&tree, &opts).unwrap();
    assert!(tight.stats.num_cutsets <= loose.stats.num_cutsets);
    let loose_sets: Vec<&Cutset> = loose.cutsets.iter().map(|r| &r.cutset).collect();
    for report in &tight.cutsets {
        assert!(loose_sets.contains(&&report.cutset));
        assert!(report.static_probability > 1e-5);
    }
}

/// The trigger acyclicity requirement of §III-B: deadlocking trigger
/// structures are rejected at construction.
#[test]
fn cyclic_triggering_is_rejected() {
    let mut b = FaultTreeBuilder::new();
    let d1 = b
        .triggered_event("d1", erlang::spare(1e-3, 0.05).unwrap())
        .unwrap();
    let d2 = b
        .triggered_event("d2", erlang::spare(1e-3, 0.05).unwrap())
        .unwrap();
    let g1 = b.or("g1", [d1]).unwrap();
    let g2 = b.or("g2", [d2]).unwrap();
    let top = b.and("top", [g1, g2]).unwrap();
    b.trigger(g1, d2).unwrap();
    b.trigger(g2, d1).unwrap();
    b.top(top);
    assert!(matches!(
        b.build(),
        Err(sdft::ft::FtError::CyclicTriggering { .. })
    ));
}

/// A triggered event is switched off until its gate fails: with an
/// impossible trigger the event contributes nothing (`F ⊆ S_on`).
#[test]
fn triggered_events_cannot_fail_while_off() {
    let mut b = FaultTreeBuilder::new();
    let never = b.static_event("never", 0.0).unwrap();
    let d = b
        .triggered_event("d", erlang::spare(0.5, 0.0).unwrap())
        .unwrap();
    let g = b.or("g", [never]).unwrap();
    let top = b.and("top", [g, d]).unwrap();
    b.trigger(g, d).unwrap();
    b.top(top);
    let tree = b.build().unwrap();
    let p = sdft::product::failure_probability(&tree, 1000.0, &ProductOptions::default()).unwrap();
    assert_eq!(p, 0.0);
}

/// Node ids used across the crates stay stable and mapped by name.
#[test]
fn node_identity_is_stable() {
    let tree = toy::example3();
    for id in tree.node_ids() {
        assert_eq!(tree.node_by_name(tree.name(id)), Some(id));
    }
    let _: Vec<NodeId> = tree.basic_events().collect();
}
