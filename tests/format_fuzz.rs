//! The text-format parser must never panic, whatever bytes it is fed.

use proptest::prelude::*;
use sdft::ft::format;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary unicode input: parse returns Ok or Err, never panics.
    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,400}") {
        let _ = format::parse_str(&input);
    }

    /// Keyword-shaped noise: lines assembled from the format's own
    /// vocabulary, which reaches much deeper into the parser.
    #[test]
    fn parser_never_panics_on_vocabulary_soup(
        tokens in prop::collection::vec(
            prop::sample::select(vec![
                "top", "basic", "gate", "dynamic", "chain", "trigger", "end",
                "and", "or", "atleast", "state", "rate", "map", "plain",
                "triggered", "erlang", "erlang-triggered", "spare", "on",
                "off", "failed", "init=1", "init=0.5", "k=2", "lambda=0.001",
                "mu=0.05", "passive=0.01", "repair-off", "a", "b", "g", "s0",
                "s1", "0.5", "-1", "1e999", "NaN", "#", "\n",
            ]),
            0..60,
        )
    ) {
        let mut text = String::new();
        for (i, token) in tokens.iter().enumerate() {
            text.push_str(token);
            text.push(if i % 4 == 3 { '\n' } else { ' ' });
        }
        let _ = format::parse_str(&text);
    }

    /// Valid models survive arbitrary comment injection.
    #[test]
    fn comments_are_inert(junk in "[^\n]{0,80}") {
        let model = format!(
            "top g #{junk}\nbasic x 0.1 #{junk}\ngate g or x #{junk}\n"
        );
        let tree = format::parse_str(&model).unwrap();
        prop_assert_eq!(tree.num_basic_events(), 1);
    }
}
