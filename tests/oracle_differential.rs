//! The differential oracle campaign as a CI gate: a fixed-seed run of
//! generated SD trees cross-checked across the engine matrix (cutset
//! pipeline, exact product chain, BDD, simulation, metamorphic
//! rewrites), plus replay of every committed counterexample in
//! `tests/corpus/`. The long-form harness with larger budgets lives in
//! `crates/bench/src/bin/oracle_long.rs`.

use sdft::oracle::{check_tree, run_oracle, CheckConfig, OracleConfig};
use std::path::Path;

/// The main gate: ≥ 200 generated trees from the fixed default seed,
/// across every generator preset, with zero disagreements. Any failure
/// prints the shrunk counterexamples in replayable `sdft-ft` form —
/// commit them under `tests/corpus/` once the root cause is fixed.
#[test]
fn fixed_seed_campaign_has_no_disagreements() {
    let cfg = OracleConfig::default();
    assert!(cfg.trees >= 200, "campaign must cover at least 200 trees");
    let report = run_oracle(&cfg);
    assert_eq!(report.trees_run, cfg.trees);
    assert!(
        report.counterexamples.is_empty(),
        "oracle found disagreements:\n{}",
        report.summary()
    );
    // Sanity: the run exercised real checks rather than skipping
    // everything (the exact tallies are locked by the digest test on a
    // smaller prefix, not here, so adding checks doesn't break CI).
    assert!(report.outcome.passed > 10 * cfg.trees);
}

/// Determinism lock: two runs of the same prefix produce bitwise-equal
/// digests (the digest folds every tree's check tallies and seed), so
/// a counterexample seed printed by one run replays in another.
#[test]
fn campaign_prefix_is_bitwise_deterministic() {
    let cfg = OracleConfig {
        trees: 24,
        check: CheckConfig {
            sim_samples: 4_000,
            ..CheckConfig::default()
        },
        ..OracleConfig::default()
    };
    let a = run_oracle(&cfg);
    let b = run_oracle(&cfg);
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.outcome, b.outcome);
}

/// Every committed counterexample replays through the full check
/// matrix without disagreement: once a defect is fixed, its minimal
/// tree guards against regression forever.
#[test]
fn corpus_counterexamples_replay_cleanly() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut replayed = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "ft"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let tree = sdft::ft::format::parse_str(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        let outcome = check_tree(&tree, &CheckConfig::default());
        assert!(
            outcome.disagreements.is_empty(),
            "{} disagrees: {:?}",
            path.display(),
            outcome.disagreements
        );
        assert!(outcome.passed > 0, "{} ran no checks", path.display());
        replayed += 1;
    }
    assert!(
        replayed >= 3,
        "corpus unexpectedly empty ({replayed} files)"
    );
}
