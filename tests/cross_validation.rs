//! Cross-validation across engines at workspace level: MOCUS vs BDD on
//! static models, the scalable pipeline vs Monte-Carlo simulation on SD
//! models, and the exact product chain as referee where it fits.

use sdft::bdd::Bdd;
use sdft::core::{analyze, AnalysisOptions};
use sdft::ft::{Cutset, EventProbabilities};
use sdft::mocus::{minimal_cutsets, MocusOptions};
use sdft::models::annotate::{annotate, AnnotationConfig};
use sdft::models::{bwr, industrial, toy};
use sdft::sim::{simulate, SimOptions};

/// MOCUS (no cutoff) and the BDD extraction agree exactly on the toy
/// model and on moderately sized generated models.
#[test]
fn mocus_and_bdd_agree_on_minimal_cutsets() {
    // Exhaustive comparison on the toy model.
    let tree = toy::example1();
    let probs = EventProbabilities::from_static(&tree).unwrap();
    let mocus_mcs = minimal_cutsets(&tree, &probs, &MocusOptions::exhaustive()).unwrap();
    let mut bdd = Bdd::new(&tree).unwrap();
    let bdd_mcs = bdd.minimal_cutsets().unwrap();
    let mut a: Vec<&Cutset> = mocus_mcs.iter().collect();
    let mut b: Vec<&Cutset> = bdd_mcs.iter().collect();
    a.sort();
    b.sort();
    assert_eq!(a, b, "cutset lists differ");

    // Cutoff comparison on a generated industrial model: MOCUS above the
    // cutoff must equal the BDD's complete list filtered by the same
    // cutoff (exhaustive MOCUS would enumerate millions of irrelevant
    // cutsets here — the cutoff is the point of the algorithm).
    let tree = industrial::generate(&industrial::model1().scaled(0.02));
    let probs = EventProbabilities::from_static(&tree).unwrap();
    let cutoff = 1e-15;
    let mocus_mcs = minimal_cutsets(&tree, &probs, &MocusOptions::with_cutoff(cutoff)).unwrap();
    let mut bdd = Bdd::new(&tree).unwrap();
    let bdd_all = bdd.minimal_cutsets().unwrap();
    let mut a: Vec<&Cutset> = mocus_mcs.iter().collect();
    let mut b: Vec<&Cutset> = bdd_all
        .iter()
        .filter(|c| c.probability_with(|e| probs.get(e)) > cutoff)
        .collect();
    a.sort();
    b.sort();
    assert!(!a.is_empty());
    assert_eq!(a.len(), b.len(), "cutset counts differ above the cutoff");
    assert_eq!(a, b, "cutset lists differ above the cutoff");
}

/// The rare-event approximation brackets the exact BDD probability from
/// above on the BWR study.
#[test]
fn bwr_rea_brackets_exact_probability() {
    let tree = bwr::build(&bwr::BwrConfig::static_model());
    let probs = EventProbabilities::from_static(&tree).unwrap();
    let mcs = minimal_cutsets(&tree, &probs, &MocusOptions::exhaustive()).unwrap();
    let rea = mcs.rare_event_approximation(|e| probs.get(e));
    let bdd = Bdd::new(&tree).unwrap();
    let exact = bdd.top_probability(&probs);
    assert!(
        rea >= exact,
        "REA {rea} must over-approximate exact {exact}"
    );
    assert!(rea / exact < 1.01, "rare events: the gap stays below 1%");
    // And the cutoff loses almost nothing here.
    let cut = minimal_cutsets(&tree, &probs, &MocusOptions::default()).unwrap();
    let cut_rea = cut.rare_event_approximation(|e| probs.get(e));
    assert!(cut_rea <= rea && cut_rea > rea * 0.98);
}

/// The scalable pipeline agrees with Monte-Carlo simulation on the BWR
/// model scaled up to visible failure rates.
#[test]
fn pipeline_agrees_with_simulation_on_sd_model() {
    // The real BWR frequency (~1e-8) is unreachable by simulation, so
    // build a small SD model with visible probabilities instead.
    let text = "
        top top
        basic ie 0.05
        basic v1 0.02
        basic v2 0.02
        dynamic p1 erlang k=1 lambda=0.01 mu=0.04
        dynamic g1 erlang k=2 lambda=0.008 mu=0.03
        dynamic p2 spare lambda=0.012 mu=0.05
        gate train1 or v1 p1 g1
        gate train2 or v2 p2
        gate cooling and train1 train2
        gate top and ie cooling
        trigger train1 p2
    ";
    let tree = sdft::ft::format::parse_str(text).unwrap();
    let horizon = 48.0;
    let mut opts = AnalysisOptions::new(horizon);
    opts.mocus = MocusOptions::exhaustive();
    let result = analyze(&tree, &opts).unwrap();
    let sim = simulate(
        &tree,
        &SimOptions {
            samples: 400_000,
            horizon,
            seed: 2015,
        },
    )
    .unwrap();
    let (lo, hi) = sim.confidence_interval_95();
    // REA over-approximates; allow the interval or a modest overshoot.
    assert!(
        result.frequency >= lo * 0.9 && result.frequency <= hi * 1.3,
        "pipeline {} outside widened simulation band [{lo}, {hi}]",
        result.frequency
    );
    // The exact product chain agrees with both.
    let exact = sdft::product::failure_probability(
        &tree,
        horizon,
        &sdft::product::ProductOptions::default(),
    )
    .unwrap();
    assert!(
        lo <= exact && exact <= hi,
        "exact {exact} outside [{lo}, {hi}]"
    );
    assert!((result.frequency - exact).abs() / exact < 0.2);
}

/// Annotated industrial models keep their analysis deterministic and
/// reproducible across runs and thread counts.
#[test]
fn industrial_analysis_is_deterministic() {
    let tree = industrial::generate(&industrial::model1().scaled(0.05));
    let probs = EventProbabilities::from_static(&tree).unwrap();
    let mcs = minimal_cutsets(&tree, &probs, &MocusOptions::default()).unwrap();
    let ranking = sdft::importance::fussell_vesely_ranking(&mcs, &probs, tree.basic_events());
    let annotated = annotate(&tree, &ranking, &AnnotationConfig::percent_dynamic(30.0)).unwrap();

    let mut opts = AnalysisOptions::new(24.0);
    opts.threads = 1;
    let sequential = analyze(&annotated.tree, &opts).unwrap();
    opts.threads = 8;
    let parallel = analyze(&annotated.tree, &opts).unwrap();
    assert_eq!(sequential.stats.num_cutsets, parallel.stats.num_cutsets);
    assert!((sequential.frequency - parallel.frequency).abs() <= sequential.frequency * 1e-12);

    let again = analyze(&annotated.tree, &opts).unwrap();
    assert_eq!(again.frequency.to_bits(), parallel.frequency.to_bits());
}

/// The static-analysis identity: a dynamic model without repairs or
/// triggers quantifies to exactly the static rare-event approximation.
#[test]
fn no_repairs_no_triggers_equals_static() {
    let static_tree = bwr::build(&bwr::BwrConfig::static_model());
    let probs = EventProbabilities::from_static(&static_tree).unwrap();
    let mcs = minimal_cutsets(&static_tree, &probs, &MocusOptions::default()).unwrap();
    let static_rea = mcs.rare_event_approximation(|e| probs.get(e));

    let dynamic_tree = bwr::build(&bwr::BwrConfig::repairs_only(0.0, 1));
    let result = analyze(&dynamic_tree, &AnalysisOptions::new(24.0)).unwrap();
    assert!(
        (result.frequency - static_rea).abs() / static_rea < 1e-6,
        "{} vs {static_rea}",
        result.frequency
    );
}
