//! End-to-end tests of the `sdft` command-line tool.

use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU32, Ordering};

const MODEL: &str = "
top cooling
basic a 0.003
basic c 0.003
basic e 0.000003
dynamic b erlang k=1 lambda=0.001 mu=0.05
dynamic d spare lambda=0.001 mu=0.05
gate pump1 or a b
gate pump2 or c d
gate pumps and pump1 pump2
gate cooling or pumps e
trigger pump1 d
";

static COUNTER: AtomicU32 = AtomicU32::new(0);

/// A uniquely named model file in the system temp directory, removed on
/// drop.
struct TempModel(PathBuf);

impl TempModel {
    fn new(contents: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "sdft-cli-test-{}-{}.sdft",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&path, contents).expect("write model");
        TempModel(path)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("utf-8 path")
    }
}

impl Drop for TempModel {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn model_file() -> TempModel {
    TempModel::new(MODEL)
}

fn run(args: &[&str]) -> (String, String, bool) {
    let output = Command::new(env!("CARGO_BIN_EXE_sdft"))
        .args(args)
        .output()
        .expect("spawn sdft");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.success(),
    )
}

#[test]
fn check_reports_structure_and_classification() {
    let file = model_file();
    let (stdout, _, ok) = run(&["check", file.path()]);
    assert!(ok);
    assert!(stdout.contains("5 basic events (2 dynamic)"));
    assert!(stdout.contains("static branching"));
    assert!(stdout.contains("triggers: d"));
}

#[test]
fn analyze_prints_frequency_and_cutsets() {
    let file = model_file();
    let (stdout, _, ok) = run(&["analyze", file.path(), "--horizon", "24"]);
    assert!(ok);
    assert!(stdout.contains("failure frequency over 24h: 3.52"));
    assert!(stdout.contains("{b, d}") || stdout.contains("{d, b}"));
    assert!(stdout.contains("5 cutsets"));
}

#[test]
fn fast_mode_runs_and_is_not_larger() {
    let file = model_file();
    let (normal, _, ok1) = run(&["analyze", file.path()]);
    let (fast, _, ok2) = run(&["analyze", file.path(), "--fast"]);
    assert!(ok1 && ok2);
    let grab = |s: &str| -> f64 {
        s.lines()
            .find(|l| l.contains("failure frequency"))
            .and_then(|l| l.split_whitespace().nth(4))
            .and_then(|v| v.parse().ok())
            .expect("frequency value")
    };
    assert!(grab(&fast) <= grab(&normal) * 1.0001);
}

#[test]
fn exact_and_mcs_agree_with_analyze() {
    let file = model_file();
    let (exact, _, ok) = run(&["exact", file.path()]);
    assert!(ok);
    assert!(exact.contains("3.505477e-4"));
    let (mcs, _, ok) = run(&["mcs", file.path()]);
    assert!(ok);
    assert!(mcs.contains("5 minimal cutsets"));
}

#[test]
fn simulate_is_deterministic_given_seed() {
    let file = model_file();
    let args = ["simulate", file.path(), "--samples", "20000", "--seed", "9"];
    let (a, _, ok1) = run(&args);
    let (b, _, ok2) = run(&args);
    assert!(ok1 && ok2);
    assert_eq!(a, b);
}

#[test]
fn dot_emits_graphviz() {
    let file = model_file();
    let (stdout, _, ok) = run(&["dot", file.path()]);
    assert!(ok);
    assert!(stdout.starts_with("digraph"));
    assert!(stdout.contains("style=dashed"));
}

#[test]
fn bad_input_fails_cleanly() {
    let (_, stderr, ok) = run(&["analyze", "/nonexistent/file.sdft"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));

    let file = TempModel::new("top g\nbasic x notanumber\n");
    let (_, stderr, ok) = run(&["analyze", file.path()]);
    assert!(!ok);
    assert!(stderr.contains("line 2"));

    let (_, _, ok) = run(&["frobnicate", "/tmp/x"]);
    assert!(!ok);
}

#[test]
fn analyze_exports_csv() {
    let file = model_file();
    let out = std::env::temp_dir().join(format!("sdft-cli-csv-{}.csv", std::process::id()));
    let (_, _, ok) = run(&["analyze", file.path(), "--csv", out.to_str().unwrap()]);
    assert!(ok);
    let text = std::fs::read_to_string(&out).unwrap();
    assert!(text.starts_with("cutset,probability"));
    assert_eq!(text.lines().count(), 6); // header + 5 cutsets
    let _ = std::fs::remove_file(&out);
}

#[test]
fn metrics_reports_mttf_and_unavailability() {
    let file = model_file();
    let (stdout, _, ok) = run(&["metrics", file.path()]);
    assert!(ok);
    assert!(stdout.contains("mean time to failure"));
    assert!(stdout.contains("steady-state unavailability"));
}

#[test]
fn check_reports_structure_statistics() {
    let file = model_file();
    let (stdout, _, ok) = run(&["check", file.path()]);
    assert!(ok);
    assert!(stdout.contains("depth 3"));
    assert!(stdout.contains("1 triggered events"));
    assert!(stdout.contains("independent modules"));
}
