//! Property-based tests over randomly generated fault trees: the
//! independent engines (MOCUS, BDD, scenario enumeration, the text
//! format) must agree on every input.

use proptest::prelude::*;
use sdft::bdd::Bdd;
use sdft::ctmc::erlang;
use sdft::ft::{
    format, Cutset, CutsetList, EventProbabilities, FaultTree, FaultTreeBuilder, NodeId, Scenario,
};
use sdft::mocus::{minimal_cutsets, MocusOptions};

/// A compact description of a random static fault tree: event
/// probabilities plus gate specs referencing earlier nodes by index.
#[derive(Debug, Clone)]
struct TreeSpec {
    probs: Vec<f64>,
    gates: Vec<(u8, Vec<usize>)>,
}

fn arb_tree_spec() -> impl Strategy<Value = TreeSpec> {
    let events = prop::collection::vec(0.0f64..=1.0, 2..7);
    let gates = prop::collection::vec((0u8..3, prop::collection::vec(0usize..100, 1..5)), 1..6);
    (events, gates).prop_map(|(probs, gates)| TreeSpec { probs, gates })
}

fn build_tree(spec: &TreeSpec) -> FaultTree {
    let mut b = FaultTreeBuilder::new();
    let mut nodes: Vec<NodeId> = spec
        .probs
        .iter()
        .enumerate()
        .map(|(i, &p)| b.static_event(&format!("e{i}"), p).expect("valid"))
        .collect();
    for (g, (kind, refs)) in spec.gates.iter().enumerate() {
        // Deduplicated inputs from the existing nodes (modular indexing).
        let mut inputs: Vec<NodeId> = refs.iter().map(|&r| nodes[r % nodes.len()]).collect();
        inputs.sort();
        inputs.dedup();
        let id = match kind {
            0 => b.and(&format!("g{g}"), inputs).expect("valid"),
            1 => b.or(&format!("g{g}"), inputs).expect("valid"),
            _ => {
                let k = (refs.len() as u32 % inputs.len() as u32) + 1;
                b.atleast(&format!("g{g}"), k, inputs).expect("valid")
            }
        };
        nodes.push(id);
    }
    let top = *nodes.last().expect("at least one gate");
    // The last node is always a gate (gates is non-empty).
    b.top(top);
    b.build().expect("spec produces a valid tree")
}

/// Shared body of `transforms_preserve_the_function`, callable both
/// from the property test and from the explicit regression replays
/// below (plain asserts so it works outside a `proptest!` block).
fn check_transforms_preserve_the_function(spec: &TreeSpec, mask: u16) {
    use sdft::ft::transform::{expand_atleast, restrict, simplify, Restriction};
    use std::collections::HashMap;

    let tree = build_tree(spec);
    let events: Vec<NodeId> = tree.basic_events().collect();
    let simplified = simplify(&tree).unwrap();
    let expanded = expand_atleast(&tree, 100_000).unwrap();
    assert!(simplified.num_gates() <= tree.num_gates());

    // A fixed assignment for the restriction: the low bits of `mask`
    // decide which events are pinned, the high bits their values.
    let mut assignment: HashMap<NodeId, bool> = HashMap::new();
    for (i, &e) in events.iter().enumerate() {
        if mask >> i & 1 == 1 {
            assignment.insert(e, mask >> (i + 8) & 1 == 1);
        }
    }
    let restricted = restrict(&tree, &assignment).unwrap();

    for scenario_mask in 0u32..(1 << events.len()) {
        let failed_names: Vec<&str> = events
            .iter()
            .enumerate()
            .filter(|(i, _)| scenario_mask >> i & 1 == 1)
            .map(|(_, &e)| tree.name(e))
            .collect();
        let eval = |t: &sdft::ft::FaultTree| {
            let s = Scenario::from_events(t, failed_names.iter().filter_map(|n| t.node_by_name(n)));
            t.fails(t.top(), &s)
        };
        let original = eval(&tree);
        assert_eq!(eval(&simplified), original, "simplify changed the function");
        assert_eq!(eval(&expanded), original, "expansion changed the function");

        // Restriction: only compare on scenarios consistent with the
        // assignment.
        let consistent = assignment.iter().all(|(&e, &v)| {
            let idx = events.iter().position(|&x| x == e).unwrap();
            (scenario_mask >> idx & 1 == 1) == v
        });
        if consistent {
            match &restricted {
                Restriction::Constant(c) => assert_eq!(*c, original),
                Restriction::Tree { tree: r, .. } => {
                    assert_eq!(eval(r), original, "restriction changed the function");
                }
            }
        }
    }
}

/// The two counterexamples recorded in
/// `tests/property.proptest-regressions`, reconstructed explicitly so
/// they keep running even if the seed-replay format changes. Both
/// once exposed bugs in `simplify` (single-input gate collapse and
/// at-least rewriting under deduplicated inputs).
#[test]
fn recorded_transform_regressions_replay() {
    check_transforms_preserve_the_function(
        &TreeSpec {
            probs: vec![0.0; 5],
            gates: vec![(0, vec![27])],
        },
        19432,
    );
    check_transforms_preserve_the_function(
        &TreeSpec {
            probs: vec![0.0, 0.0],
            gates: vec![(0, vec![0]), (2, vec![8, 5, 33])],
        },
        0,
    );
}

/// Brute-force minimal cutsets by scenario enumeration.
fn brute_force_mcs(tree: &FaultTree) -> Vec<Cutset> {
    let events: Vec<NodeId> = tree.basic_events().collect();
    let mut failing: Vec<u32> = Vec::new();
    for mask in 0u32..(1 << events.len()) {
        let scenario = Scenario::from_events(
            tree,
            events
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &e)| e),
        );
        if tree.fails(tree.top(), &scenario) {
            failing.push(mask);
        }
    }
    let mut out: Vec<Cutset> = failing
        .iter()
        .filter(|&&m| !failing.iter().any(|&o| o != m && o & m == o))
        .map(|&m| {
            Cutset::new(
                events
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| m >> i & 1 == 1)
                    .map(|(_, &e)| e),
            )
        })
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// MOCUS, the BDD engine, and brute-force enumeration agree on the
    /// minimal cutsets of random trees with AND/OR/at-least gates.
    #[test]
    fn three_engines_agree_on_minimal_cutsets(spec in arb_tree_spec()) {
        let tree = build_tree(&spec);
        let probs = EventProbabilities::from_static(&tree).unwrap();
        let mut mocus_mcs: Vec<Cutset> =
            minimal_cutsets(&tree, &probs, &MocusOptions::exhaustive())
                .unwrap()
                .into_iter()
                .collect();
        mocus_mcs.sort();
        let mut bdd = Bdd::new(&tree).unwrap();
        let mut bdd_mcs: Vec<Cutset> =
            bdd.minimal_cutsets().unwrap().into_iter().collect();
        bdd_mcs.sort();
        let brute = brute_force_mcs(&tree);
        prop_assert_eq!(&mocus_mcs, &brute);
        prop_assert_eq!(&bdd_mcs, &brute);
    }

    /// The BDD probability equals exhaustive scenario enumeration, and
    /// the rare-event approximation is an upper bound.
    #[test]
    fn bdd_probability_matches_enumeration(spec in arb_tree_spec()) {
        let tree = build_tree(&spec);
        let probs = EventProbabilities::from_static(&tree).unwrap();
        let bdd = Bdd::new(&tree).unwrap();
        let exact = tree.exact_static_probability().unwrap();
        prop_assert!((bdd.top_probability(&probs) - exact).abs() < 1e-12);
        let mcs = minimal_cutsets(&tree, &probs, &MocusOptions::exhaustive()).unwrap();
        let rea = mcs.rare_event_approximation(|e| probs.get(e));
        prop_assert!(rea >= exact - 1e-12);
    }

    /// Cutoff soundness: every cutset above the cutoff survives pruning.
    #[test]
    fn cutoff_never_loses_relevant_cutsets(
        spec in arb_tree_spec(),
        cutoff in 1e-6f64..1e-1,
    ) {
        let tree = build_tree(&spec);
        let probs = EventProbabilities::from_static(&tree).unwrap();
        let all = minimal_cutsets(&tree, &probs, &MocusOptions::exhaustive()).unwrap();
        let pruned =
            minimal_cutsets(&tree, &probs, &MocusOptions::with_cutoff(cutoff)).unwrap();
        for cutset in &all {
            if cutset.probability_with(|e| probs.get(e)) > cutoff {
                prop_assert!(
                    pruned.contains_set(cutset),
                    "lost cutset {:?} above cutoff {}", cutset, cutoff
                );
            }
        }
        for cutset in &pruned {
            prop_assert!(all.contains_set(cutset), "invented cutset {:?}", cutset);
        }
    }

    /// Parallel MOCUS (2, 4, 8 threads) is bitwise-identical to the
    /// single-threaded engine on random trees with cutoffs, assumptions
    /// and at-least gates — both the cutset list and the
    /// schedule-independent counters.
    #[test]
    fn parallel_mocus_matches_single_thread(
        spec in arb_tree_spec(),
        cutoff in 1e-6f64..1e-1,
        assume_mask in any::<u16>(),
    ) {
        use sdft::mocus::{minimal_cutsets_rooted_with_stats, Assumptions};
        let tree = build_tree(&spec);
        let probs = EventProbabilities::from_static(&tree).unwrap();
        // Pin a few events via assumptions: the low bits of `assume_mask`
        // select events, the high bits their assumed state.
        let mut assumptions = Assumptions::new(&tree);
        for (i, e) in tree.basic_events().enumerate() {
            if assume_mask >> i & 1 == 1 {
                if assume_mask >> (i + 8) & 1 == 1 {
                    assumptions.assume_failed(e).unwrap();
                } else {
                    assumptions.assume_ok(e).unwrap();
                }
            }
        }
        // The top mask bit toggles between a cutoff run and an
        // exhaustive one.
        let options = if assume_mask & 0x8000 != 0 {
            MocusOptions::with_cutoff(cutoff)
        } else {
            MocusOptions::exhaustive()
        };
        let base = MocusOptions { threads: 1, ..options };
        let (reference, ref_stats) = minimal_cutsets_rooted_with_stats(
            &tree, tree.top(), &probs, &base, &assumptions,
        ).unwrap();
        for threads in [2usize, 4, 8] {
            let opts = MocusOptions { threads, ..options };
            let (mcs, stats) = minimal_cutsets_rooted_with_stats(
                &tree, tree.top(), &probs, &opts, &assumptions,
            ).unwrap();
            prop_assert_eq!(&reference, &mcs, "threads = {}", threads);
            prop_assert_eq!(
                ref_stats.deterministic(),
                stats.deterministic(),
                "threads = {}",
                threads
            );
        }
    }

    /// Minimization produces an antichain that covers the input.
    #[test]
    fn minimize_is_an_antichain_cover(
        sets in prop::collection::vec(prop::collection::vec(0usize..10, 1..5), 1..20)
    ) {
        let input: Vec<Cutset> = sets
            .iter()
            .map(|s| Cutset::new(s.iter().map(|&i| NodeId::from_index(i))))
            .collect();
        let minimized = CutsetList::from_vec(input.clone()).minimize();
        // Antichain: no member subsumes another.
        for a in &minimized {
            for b in &minimized {
                prop_assert!(a == b || !a.is_subset_of(b));
            }
        }
        // Cover: every input set is a superset of some member, and every
        // member is an input set.
        for set in &input {
            prop_assert!(minimized.iter().any(|m| m.is_subset_of(set)));
        }
        for m in &minimized {
            prop_assert!(input.contains(m));
        }
    }

    /// The sharded streaming filter reassembles to the sequential
    /// incremental minimizer and the batch minimize: partitioning the
    /// stream by shard key, minimizing each shard independently and
    /// reconciling the union gives exactly the minimal antichain, for
    /// every shard count and fallback mode.
    #[test]
    fn sharded_filter_matches_sequential_and_batch(
        sets in prop::collection::vec(prop::collection::vec(0usize..12, 1..6), 1..60),
        mode_sel in 0u8..3,
    ) {
        use sdft::ft::{FallbackMode, IncrementalMinimizer};
        let mode = match mode_sel {
            0 => FallbackMode::Adaptive,
            1 => FallbackMode::Always,
            _ => FallbackMode::Never,
        };
        let input: Vec<Cutset> = sets
            .iter()
            .map(|s| Cutset::new(s.iter().map(|&i| NodeId::from_index(i))))
            .collect();
        let mut batch: Vec<Cutset> =
            CutsetList::from_vec(input.clone()).minimize().into_iter().collect();
        batch.sort();
        let mut sequential = IncrementalMinimizer::with_mode(mode);
        for c in input.clone() {
            sequential.absorb(c);
        }
        let mut seq = sequential.into_sorted();
        seq.sort();
        prop_assert_eq!(&seq, &batch, "sequential vs batch, mode = {}", mode);
        for shards in [1usize, 2, 4, 8] {
            let mut minimizers: Vec<IncrementalMinimizer> =
                (0..shards).map(|_| IncrementalMinimizer::with_mode(mode)).collect();
            for c in input.clone() {
                let key = c.shard_key(shards);
                prop_assert!(key < shards);
                minimizers[key].absorb(c);
            }
            let union: Vec<Cutset> = minimizers
                .into_iter()
                .flat_map(IncrementalMinimizer::into_sorted)
                .collect();
            let mut reconciled: Vec<Cutset> =
                CutsetList::from_vec(union).minimize().into_iter().collect();
            reconciled.sort();
            prop_assert_eq!(&reconciled, &batch, "shards = {}, mode = {}", shards, mode);
        }
    }

    /// Tree transformations preserve the evaluated function on every
    /// scenario: simplification exactly, voting expansion exactly, and
    /// restriction under the substituted assignment.
    #[test]
    fn transforms_preserve_the_function(spec in arb_tree_spec(), mask in any::<u16>()) {
        check_transforms_preserve_the_function(&spec, mask);
    }

    /// The text format round-trips random SD fault trees.
    #[test]
    fn format_roundtrip(seed in any::<u64>()) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = FaultTreeBuilder::new();
        let mut leaves = Vec::new();
        for i in 0..rng.gen_range(2..6) {
            leaves.push(b.static_event(&format!("s{i}"), rng.gen_range(0.0..0.5)).unwrap());
        }
        for i in 0..rng.gen_range(1..4) {
            let chain = erlang::repairable(
                rng.gen_range(1..4),
                rng.gen_range(1e-4..1e-2),
                if rng.gen_bool(0.5) { rng.gen_range(1e-3..1e-1) } else { 0.0 },
            )
            .unwrap();
            leaves.push(b.dynamic_event(&format!("p{i}"), chain).unwrap());
        }
        let t1 = b.or("t1", leaves[..leaves.len() / 2].to_vec()).unwrap();
        let t2 = b.or("t2", leaves[leaves.len() / 2..].to_vec()).unwrap();
        let mut tops = vec![t1, t2];
        if rng.gen_bool(0.7) {
            let d = b
                .triggered_event(
                    "d0",
                    erlang::triggered(rng.gen_range(1..3), 2e-3, 0.05).unwrap(),
                )
                .unwrap();
            b.trigger(t1, d).unwrap();
            tops.push(d);
        }
        let top = b.and("top", tops).unwrap();
        b.top(top);
        let tree = b.build().unwrap();

        let text = format::to_string(&tree);
        let back = format::parse_str(&text).unwrap();
        prop_assert_eq!(back.num_basic_events(), tree.num_basic_events());
        prop_assert_eq!(back.num_gates(), tree.num_gates());
        for id in tree.node_ids() {
            let name = tree.name(id);
            let bid = back.node_by_name(name).unwrap();
            prop_assert_eq!(tree.gate_kind(id), back.gate_kind(bid));
            prop_assert_eq!(tree.behavior(id), back.behavior(bid));
            prop_assert_eq!(
                tree.trigger_source(id).map(|g| tree.name(g)),
                back.trigger_source(bid).map(|g| back.name(g))
            );
        }
        // And the round-tripped tree analyzes to the same frequency.
        let r1 = sdft::core::analyze(&tree, &sdft::core::AnalysisOptions::new(24.0)).unwrap();
        let r2 = sdft::core::analyze(&back, &sdft::core::AnalysisOptions::new(24.0)).unwrap();
        prop_assert!((r1.frequency - r2.frequency).abs() <= r1.frequency.abs() * 1e-12);
    }
}
