//! API-guideline conformance checks: thread-safety of the public types
//! (C-SEND-SYNC), meaningful error messages (C-GOOD-ERR), and non-empty
//! Debug output (C-DEBUG-NONEMPTY).

use sdft::ctmc::erlang;
use sdft::models::toy;

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn core_types_are_send_and_sync() {
    assert_send_sync::<sdft::ft::FaultTree>();
    assert_send_sync::<sdft::ft::FaultTreeBuilder>();
    assert_send_sync::<sdft::ft::Cutset>();
    assert_send_sync::<sdft::ft::CutsetList>();
    assert_send_sync::<sdft::ft::EventProbabilities>();
    assert_send_sync::<sdft::ft::Scenario>();
    assert_send_sync::<sdft::ctmc::Ctmc>();
    assert_send_sync::<sdft::ctmc::TriggeredCtmc>();
    assert_send_sync::<sdft::ctmc::PoissonWeights>();
    assert_send_sync::<sdft::bdd::Bdd>();
    assert_send_sync::<sdft::product::ProductChain>();
    assert_send_sync::<sdft::core::AnalysisResult>();
    assert_send_sync::<sdft::core::FtcContext>();
    assert_send_sync::<sdft::core::CutsetModel>();
    assert_send_sync::<sdft::mocus::Assumptions>();
    assert_send_sync::<sdft::importance::ImportanceReport>();
    assert_send_sync::<sdft::sim::SimResult>();
}

#[test]
fn error_types_are_send_sync_errors() {
    fn assert_error<T: std::error::Error + Send + Sync + 'static>() {}
    assert_error::<sdft::ft::FtError>();
    assert_error::<sdft::ctmc::CtmcError>();
    assert_error::<sdft::mocus::MocusError>();
    assert_error::<sdft::bdd::BddError>();
    assert_error::<sdft::product::ProductError>();
    assert_error::<sdft::sim::SimError>();
    assert_error::<sdft::core::CoreError>();
}

#[test]
fn error_messages_are_lowercase_and_informative() {
    let messages = vec![
        sdft::ctmc::CtmcError::EmptyStateSpace.to_string(),
        sdft::ctmc::CtmcError::InvalidRate {
            from: 0,
            to: 1,
            rate: -1.0,
        }
        .to_string(),
        sdft::ctmc::CtmcError::InvalidHorizon { horizon: f64::NAN }.to_string(),
        sdft::ctmc::CtmcError::DidNotConverge { iterations: 5 }.to_string(),
        sdft::ft::FtError::MissingTop.to_string(),
        sdft::ft::FtError::DuplicateName { name: "x".into() }.to_string(),
        sdft::ft::FtError::CyclicTriggering { name: "d".into() }.to_string(),
        sdft::ft::FtError::Parse {
            line: 3,
            message: "bad token".into(),
        }
        .to_string(),
        sdft::mocus::MocusError::TooManyPartials { limit: 10 }.to_string(),
        sdft::mocus::MocusError::InvalidCutoff { cutoff: -1.0 }.to_string(),
        sdft::bdd::BddError::TooManyNodes { limit: 4 }.to_string(),
        sdft::product::ProductError::TooManyStates { limit: 9 }.to_string(),
        sdft::sim::SimError::InvalidHorizon { horizon: -2.0 }.to_string(),
        sdft::core::CoreError::InvalidHorizon { horizon: -2.0 }.to_string(),
    ];
    for message in messages {
        assert!(!message.is_empty());
        let first_word = message.split_whitespace().next().unwrap();
        let acronym = first_word
            .chars()
            .all(|c| !c.is_alphabetic() || c.is_uppercase());
        let first = message.chars().next().unwrap();
        assert!(
            first.is_lowercase() || !first.is_alphabetic() || acronym,
            "error message should start lowercase (or with an acronym): {message:?}"
        );
        assert!(
            !message.ends_with('.'),
            "no trailing punctuation: {message:?}"
        );
        assert!(
            message.len() > 10,
            "message should carry detail: {message:?}"
        );
    }
}

#[test]
fn error_sources_are_chained() {
    use std::error::Error;
    let inner = sdft::ctmc::CtmcError::EmptyStateSpace;
    let outer = sdft::ft::FtError::Ctmc(inner.clone());
    assert!(outer.source().is_some());
    let core: sdft::core::CoreError = outer.into();
    assert!(core.source().is_some());
    let mocus = sdft::mocus::MocusError::Ft(sdft::ft::FtError::MissingTop);
    assert!(mocus.source().is_some());
    let product: sdft::product::ProductError = inner.into();
    assert!(product.source().is_some());
}

#[test]
fn debug_output_is_never_empty() {
    let tree = toy::example3();
    assert!(!format!("{tree:?}").is_empty());
    let chain = erlang::spare(1e-3, 0.05).unwrap();
    assert!(!format!("{chain:?}").is_empty());
    let cutset = sdft::ft::Cutset::new(std::iter::empty());
    assert!(!format!("{cutset:?}").is_empty());
    assert_eq!(cutset.to_string(), "{}");
    let list = sdft::ft::CutsetList::new();
    assert!(!format!("{list:?}").is_empty());
}

#[test]
fn display_formats_are_human_readable() {
    use sdft::core::TriggerClass;
    assert_eq!(
        TriggerClass::StaticBranching.to_string(),
        "static branching"
    );
    assert_eq!(TriggerClass::General.to_string(), "general");
    assert_eq!(
        TriggerClass::StaticJoinsUniform.to_string(),
        "static joins with uniform triggering"
    );
    assert_eq!(sdft::ft::GateKind::And.to_string(), "and");
    assert_eq!(sdft::ft::GateKind::AtLeast(2).to_string(), "atleast 2");
    assert_eq!(sdft::ft::NodeId::from_index(7).to_string(), "n7");
    let ef = sdft::importance::uncertainty::ErrorFactor::new(3.0).unwrap();
    assert_eq!(ef.to_string(), "EF 3");
}

#[test]
fn collections_implement_from_iterator_and_extend() {
    use sdft::ft::{Cutset, CutsetList, NodeId};
    let cutset: Cutset = (0..3).map(NodeId::from_index).collect();
    assert_eq!(cutset.order(), 3);
    let mut list: CutsetList = std::iter::once(cutset.clone()).collect();
    list.extend(std::iter::once(cutset));
    assert_eq!(list.len(), 2);
    let back: Vec<Cutset> = list.into_iter().collect();
    assert_eq!(back.len(), 2);
}

#[test]
fn builders_support_chaining() {
    let mut b = sdft::ctmc::CtmcBuilder::new(2);
    b.initial(0, 1.0).rate(0, 1, 1e-3).failed(1);
    assert!(b.build().is_ok());
    let mut tb = sdft::ctmc::TriggeredCtmcBuilder::new();
    tb.off_state()
        .on_state()
        .initial(0, 1.0)
        .map(0, 1)
        .rate(1, 1, 0.0);
    assert!(tb.build().is_ok());
}
