//! The trigger-structure classes of the §VI-A BWR model, as promised by
//! its module documentation: train gates have static joins (all-OR
//! subtrees), the FEED&BLEED trigger (an AND of two dynamic trains)
//! exercises the general case.

use sdft::core::{analyze, classify_triggering_gates, AnalysisOptions, TriggerClass};
use sdft::models::bwr::{build, BwrConfig};

#[test]
fn bwr_trigger_classes_are_as_documented() {
    let tree = build(&BwrConfig::fully_dynamic(0.01, 1));
    let classes = classify_triggering_gates(&tree);
    let class_of = |name: &str| classes[&tree.node_by_name(name).unwrap()];

    for train in ["ecc_train1", "efw_train1", "rhr_train1", "ccw_train1"] {
        assert_eq!(
            class_of(train),
            TriggerClass::StaticJoins,
            "{train} should be static joins (pure-OR subtree, several dynamics)"
        );
    }
    // SWS has a single dynamic event per train, so it gets the even
    // cheaper static-branching class.
    assert_eq!(class_of("sws_train1"), TriggerClass::StaticBranching);
    assert_eq!(
        class_of("rhr_fail"),
        TriggerClass::General,
        "the FEED&BLEED trigger is an AND of two dynamic trains"
    );
}

#[test]
fn bwr_general_case_cutsets_stay_within_chain_budgets() {
    // The paper: "each has mostly less than 100,000 states" — our BWR
    // stays far below that even for the general-case FEED&BLEED cutsets.
    let tree = build(&BwrConfig::fully_dynamic(0.01, 1));
    let result = analyze(&tree, &AnalysisOptions::new(24.0)).unwrap();
    assert!(
        result.stats.max_chain_states < 100_000,
        "largest chain: {}",
        result.stats.max_chain_states
    );
    let general = result.cutsets.iter().filter(|r| r.used_general).count();
    assert!(general > 0, "FEED&BLEED cutsets use the general case");
    // And they are a small minority, as the method requires.
    assert!(general * 10 < result.stats.num_cutsets);
}

#[test]
fn common_cause_variant_shrinks_the_dynamic_gain() {
    // The paper: CCFs dominate and are less influenced by timing, so the
    // *relative* improvement from dynamic modeling shrinks when they are
    // included.
    let horizon = 24.0;
    let plain_static = build(&BwrConfig::static_model());
    let plain_dynamic = build(&BwrConfig::fully_dynamic(0.01, 1));
    let ccf_static = build(&BwrConfig {
        common_cause: true,
        ..BwrConfig::static_model()
    });
    let ccf_dynamic = build(&BwrConfig {
        common_cause: true,
        ..BwrConfig::fully_dynamic(0.01, 1)
    });

    let freq = |t: &sdft::ft::FaultTree| {
        analyze(t, &AnalysisOptions::new(horizon))
            .unwrap()
            .frequency
    };
    let plain_gain = freq(&plain_static) / freq(&plain_dynamic);
    let ccf_gain = freq(&ccf_static) / freq(&ccf_dynamic);
    assert!(
        ccf_gain < plain_gain,
        "CCFs should damp the dynamic gain: {ccf_gain} vs {plain_gain}"
    );
}
