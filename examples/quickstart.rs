//! Quickstart: model the paper's running example (an emergency cooling
//! system with a spare pump) and analyze it with the scalable SD
//! algorithm, then sanity-check the result against the exact product
//! chain semantics.
//!
//! Run with: `cargo run --release --example quickstart`

use sdft::core::{analyze, AnalysisOptions};
use sdft::ctmc::erlang;
use sdft::ft::FaultTreeBuilder;
use sdft::product::{failure_probability, ProductOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Example 3 of the paper: the cooling system fails if the water tank
    // fails, or both pump trains fail. Failures in operation are dynamic:
    // pump 1 runs from the start (repairable), pump 2 is a spare switched
    // on by the failure of pump 1.
    let mut b = FaultTreeBuilder::new();
    let a = b.static_event("a", 3e-3)?; // pump 1 fails to start
    let bb = b.dynamic_event("b", erlang::repairable(1, 1e-3, 0.05)?)?;
    let c = b.static_event("c", 3e-3)?; // pump 2 fails to start
    let d = b.triggered_event("d", erlang::spare(1e-3, 0.05)?)?;
    let e = b.static_event("e", 3e-6)?; // water tank
    let pump1 = b.or("pump1", [a, bb])?;
    let pump2 = b.or("pump2", [c, d])?;
    let pumps = b.and("pumps", [pump1, pump2])?;
    let top = b.or("cooling", [pumps, e])?;
    b.trigger(pump1, d)?; // pump 1's failure starts the spare
    b.top(top);
    let tree = b.build()?;

    println!(
        "SD fault tree: {} basic events, {} gates",
        tree.num_basic_events(),
        tree.num_gates()
    );

    // The scalable analysis: minimal cutsets + per-cutset Markov models.
    let horizon = 24.0;
    let result = analyze(&tree, &AnalysisOptions::new(horizon))?;
    println!(
        "\nminimal cutsets above the cutoff: {}",
        result.stats.num_cutsets
    );
    for report in &result.cutsets {
        let names: Vec<&str> = report
            .cutset
            .events()
            .iter()
            .map(|&ev| tree.name(ev))
            .collect();
        println!(
            "  {{{}}}  p = {:.3e}  ({} dynamic, chain of {} states)",
            names.join(", "),
            report.probability,
            report.cutset_dynamic,
            report.chain_states,
        );
    }
    println!(
        "\ntime-aware failure frequency (24h): {:.4e}",
        result.frequency
    );
    println!(
        "static worst-case approximation:    {:.4e}",
        result.static_rea
    );

    // This model is tiny, so the exact product chain is available as a
    // reference — on a real plant model it would have ~2^2500 states.
    let exact = failure_probability(&tree, horizon, &ProductOptions::default())?;
    println!("exact product-chain probability:    {:.4e}", exact);
    let gap = (result.frequency - exact).abs() / exact;
    println!("relative gap to exact: {:.2}%", gap * 100.0);
    assert!(gap < 0.05, "the decomposition should be close to exact");
    Ok(())
}
