//! A tour of the supporting tools: the text format, Graphviz export,
//! exact BDD analysis, importance measures, Monte-Carlo simulation and
//! the exact product-chain reference.
//!
//! Run with: `cargo run --release --example toolbox`

use sdft::bdd::Bdd;
use sdft::ft::{dot, format, EventProbabilities};
use sdft::importance::importance;
use sdft::mocus::{minimal_cutsets, MocusOptions};
use sdft::product::{failure_probability, ProductOptions};
use sdft::sim::{simulate, SimOptions};

const MODEL: &str = "
# The running example of the paper, in the sdft text format.
top cooling
basic a 0.003
basic c 0.003
basic e 0.000003
dynamic b erlang k=1 lambda=0.001 mu=0.05
dynamic d spare lambda=0.001 mu=0.05
gate pump1 or a b
gate pump2 or c d
gate pumps and pump1 pump2
gate cooling or pumps e
trigger pump1 d
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Parse a model from text; `format::to_string` round-trips it.
    let tree = format::parse_str(MODEL)?;
    println!("parsed {} nodes; serialized form:", tree.len());
    println!("{}", format::to_string(&tree));

    // Graphviz export for documentation and review.
    let rendered = dot::to_dot(&tree);
    println!(
        "DOT export: {} lines (pipe into `dot -Tsvg`)",
        rendered.lines().count()
    );

    // Static analyses on the induced static structure: MOCUS with a
    // cutoff vs the exact BDD probability.
    let static_tree = format::parse_str(
        "top cooling\nbasic a 0.003\nbasic b 0.001\nbasic c 0.003\nbasic d 0.001\n\
         basic e 0.000003\ngate pump1 or a b\ngate pump2 or c d\n\
         gate pumps and pump1 pump2\ngate cooling or pumps e\n",
    )?;
    let probs = EventProbabilities::from_static(&static_tree)?;
    let mcs = minimal_cutsets(&static_tree, &probs, &MocusOptions::default())?;
    let rea = mcs.rare_event_approximation(|e| probs.get(e));
    let bdd = Bdd::new(&static_tree)?;
    let exact = bdd.top_probability(&probs);
    println!(
        "static: {} MCS, REA {:.4e}, exact (BDD) {:.4e}",
        mcs.len(),
        rea,
        exact
    );

    // Importance measures over the cutset list.
    println!("\nimportance measures:");
    println!(
        "{:<6} {:>8} {:>10} {:>8} {:>8}",
        "event", "FV", "Birnbaum", "RAW", "RRW"
    );
    for report in importance(&mcs, &probs, static_tree.basic_events()) {
        println!(
            "{:<6} {:>8.4} {:>10.3e} {:>8.2} {:>8.2}",
            static_tree.name(report.event),
            report.fussell_vesely,
            report.birnbaum,
            report.raw,
            report.rrw,
        );
    }

    // Two independent references for the SD semantics: the exact product
    // chain and Monte-Carlo simulation.
    let exact = failure_probability(&tree, 24.0, &ProductOptions::default())?;
    let sim = simulate(
        &tree,
        &SimOptions {
            samples: 200_000,
            horizon: 24.0,
            seed: 7,
        },
    )?;
    println!("\nexact product chain (24h): {exact:.4e}");
    println!("simulation:                {sim}");
    Ok(())
}
