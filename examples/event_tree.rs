//! Event-tree-driven modeling: the demand order of safety functions
//! (which static analysis cannot use, §V-A of the paper) becomes
//! triggering structure automatically.
//!
//! A loss-of-feedwater initiator demands three cooling functions in
//! sequence; each function's standby pumps are triggered spares that
//! start only when the previous function has failed. The same plant
//! analyzed without the demand order treats every pump as running from
//! time zero — and over-estimates the damage frequency.
//!
//! Run with: `cargo run --release --example event_tree`

use sdft::core::{analyze, AnalysisOptions};
use sdft::ctmc::erlang;
use sdft::ft::{FaultTreeBuilder, NodeId};
use sdft::models::event_tree::EventTree;

/// One cooling function: a valve (static) plus a pump whose
/// failure-in-operation is dynamic; standby functions get triggered
/// spares.
fn function(
    b: &mut FaultTreeBuilder,
    name: &str,
    standby: bool,
) -> Result<NodeId, Box<dyn std::error::Error>> {
    let valve = b.static_event(&format!("{name}_valve"), 8e-4)?;
    let pump = if standby {
        b.triggered_event(&format!("{name}_pump"), erlang::triggered(1, 2e-3, 0.02)?)?
    } else {
        b.dynamic_event(&format!("{name}_pump"), erlang::repairable(1, 2e-3, 0.02)?)?
    };
    Ok(b.or(&format!("{name}_fail"), [valve, pump])?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // With the demand order: MFW runs from the start, ECC and EFW are
    // standby functions started by the preceding failure.
    let mut b = FaultTreeBuilder::new();
    let mfw = function(&mut b, "mfw", false)?;
    let ecc = function(&mut b, "ecc", true)?;
    let efw = function(&mut b, "efw", true)?;
    let mut et = EventTree::new("loss_of_feedwater", 5e-3);
    et.function("mfw", mfw)?;
    et.function("ecc", ecc)?;
    et.function("efw", efw)?;
    et.damage_if_all_fail()?;
    let top = et.build(&mut b)?;
    b.top(top);
    let sequenced = b.build()?;

    // The same plant without demand ordering: every pump always on.
    let mut b = FaultTreeBuilder::new();
    let mfw = function(&mut b, "mfw", false)?;
    let ecc = function(&mut b, "ecc", false)?;
    let efw = function(&mut b, "efw", false)?;
    let ie = b.static_event("loss_of_feedwater", 5e-3)?;
    let seq = b.and("seq", [ie, mfw, ecc, efw])?;
    b.top(seq);
    let always_on = b.build()?;

    let horizon = 72.0;
    let with_order = analyze(&sequenced, &AnalysisOptions::new(horizon))?;
    let without_order = analyze(&always_on, &AnalysisOptions::new(horizon))?;
    println!("core damage frequency over {horizon}h:");
    println!(
        "  demand-ordered (event tree): {:.4e}",
        with_order.frequency
    );
    println!(
        "  all functions always on:     {:.4e}",
        without_order.frequency
    );
    println!(
        "  static worst case:           {:.4e}",
        with_order.static_rea
    );
    println!(
        "\nthe demand order removes {:.0}% of the always-on estimate",
        100.0 * (1.0 - with_order.frequency / without_order.frequency)
    );
    assert!(with_order.frequency < without_order.frequency);
    assert!(without_order.frequency <= with_order.static_rea * 1.0001);

    // The wiring the event tree created:
    for name in ["ecc_pump", "efw_pump"] {
        let event = sequenced.node_by_name(name).unwrap();
        let source = sequenced.trigger_source(event).unwrap();
        println!("{name} is triggered by {}", sequenced.name(source));
    }
    Ok(())
}
