//! The §VI-A case study: a fictive boiling water reactor's core damage
//! frequency, analyzed statically and then with increasingly rich dynamic
//! behaviour — repairs at growing rates, then the six triggering
//! dependencies added one by one (FEED&BLEED, RHR, EFW, ECC, SWS, CCW).
//!
//! Run with: `cargo run --release --example bwr_study`

use sdft::core::{analyze, AnalysisOptions};
use sdft::ft::EventProbabilities;
use sdft::mocus::{minimal_cutsets, MocusOptions};
use sdft::models::bwr::{build, BwrConfig, Triggers};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let horizon = 24.0;

    // The purely static safety study.
    let static_tree = build(&BwrConfig::static_model());
    let probs = EventProbabilities::from_static(&static_tree)?;
    let mcs = minimal_cutsets(&static_tree, &probs, &MocusOptions::default())?;
    println!(
        "BWR model: {} basic events, {} gates, {} minimal cutsets",
        static_tree.num_basic_events(),
        static_tree.num_gates(),
        mcs.len()
    );
    let static_freq = mcs.rare_event_approximation(|e| probs.get(e));
    println!("\n{:<28} {:>12}  {:>9}", "setting", "failure freq.", "time");
    println!("{:<28} {:>12.3e}  {:>9}", "no timing", static_freq, "-");

    let run = |label: &str, config: &BwrConfig| -> Result<f64, Box<dyn std::error::Error>> {
        let tree = build(config);
        let begin = Instant::now();
        let result = analyze(&tree, &AnalysisOptions::new(horizon))?;
        println!(
            "{:<28} {:>12.3e}  {:>8.2?}",
            label,
            result.frequency,
            begin.elapsed()
        );
        Ok(result.frequency)
    };

    // Repairs make the analysis time-aware: two simultaneous failures are
    // needed, not just two failures anywhere in the mission.
    run("repair rate 1/1000h", &BwrConfig::repairs_only(1e-3, 1))?;
    run("repair rate 1/100h", &BwrConfig::repairs_only(1e-2, 1))?;
    run("repair rate 1/10h", &BwrConfig::repairs_only(1e-1, 1))?;

    // Triggers defer the start of standby trains, shortening their
    // exposure — every added trigger lowers the frequency further.
    let mut last = f64::INFINITY;
    let labels = [
        "+FEED&BLEED trigger",
        "+RHR trigger",
        "+EFW trigger",
        "+ECC trigger",
        "+SWS trigger",
        "+CCW trigger",
    ];
    for (i, label) in labels.iter().enumerate() {
        let config = BwrConfig {
            triggers: Triggers::first(i + 1),
            ..BwrConfig::repairs_only(1e-2, 1)
        };
        let freq = run(label, &config)?;
        assert!(
            freq <= last * 1.0001,
            "each trigger should lower the frequency"
        );
        last = freq;
    }
    println!("\nEvery dynamic refinement lowered the conservative static estimate.");
    Ok(())
}
