//! The §VI-B workflow on an industrial-scale model: generate a PSA-shaped
//! fault tree, rank basic events by Fussell–Vesely importance, replace a
//! growing fraction of them with dynamic (repairable, triggered) events,
//! and watch the failure frequency sharpen while the analysis stays fast.
//!
//! Run with: `cargo run --release --example industrial_sweep [scale]`
//! (default scale 0.2; 1.0 reproduces the paper's ~3,000-event model).

use sdft::core::{analyze, AnalysisOptions};
use sdft::ft::EventProbabilities;
use sdft::importance::fussell_vesely_ranking;
use sdft::mocus::{minimal_cutsets, MocusOptions};
use sdft::models::annotate::{annotate, AnnotationConfig};
use sdft::models::industrial;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args().nth(1).map_or(Ok(0.2), |s| s.parse())?;

    let begin = Instant::now();
    let tree = industrial::generate(&industrial::model1().scaled(scale));
    println!(
        "generated model: {} basic events, {} gates ({:.2?})",
        tree.num_basic_events(),
        tree.num_gates(),
        begin.elapsed()
    );

    let probs = EventProbabilities::from_static(&tree)?;
    let begin = Instant::now();
    let mcs = minimal_cutsets(&tree, &probs, &MocusOptions::default())?;
    println!(
        "{} minimal cutsets above 1e-15 ({:.2?}), static REA {:.3e}",
        mcs.len(),
        begin.elapsed(),
        mcs.rare_event_approximation(|e| probs.get(e))
    );

    // Rank events by how much risk flows through them; the most important
    // ones get dynamic models first (§VI-B).
    let ranking = fussell_vesely_ranking(&mcs, &probs, tree.basic_events());
    println!("\ntop 5 events by Fussell–Vesely importance:");
    for (event, fv) in ranking.iter().take(5) {
        println!("  {:<24} FV = {:.3}", tree.name(*event), fv);
    }

    println!(
        "\n{:>7} {:>7} {:>14} {:>10} {:>9}",
        "% dyn", "% trig", "failure freq.", "MCS", "time"
    );
    for pct in [10.0, 30.0, 50.0, 100.0] {
        let annotated = annotate(&tree, &ranking, &AnnotationConfig::percent_dynamic(pct))?;
        let begin = Instant::now();
        let result = analyze(&annotated.tree, &AnalysisOptions::new(24.0))?;
        println!(
            "{:>7} {:>7} {:>14.3e} {:>10} {:>8.2?}",
            pct,
            pct / 10.0,
            result.frequency,
            result.stats.num_cutsets,
            begin.elapsed()
        );
    }
    println!("\nTiming-aware modeling removed conservatism that a static study keeps.");
    Ok(())
}
