//! Beyond the paper's failure frequency: the other reliability metrics
//! this workspace computes on the same models — mean time to failure,
//! steady-state unavailability, completion ordering of a cutset, and
//! parameter-uncertainty bands.
//!
//! Run with: `cargo run --release --example reliability_metrics`

use sdft::ctmc::StationaryOptions;
use sdft::ft::{format, EventProbabilities};
use sdft::importance::uncertainty::{propagate, UncertaintyOptions};
use sdft::mocus::{minimal_cutsets, MocusOptions};
use sdft::product::{ProductChain, ProductOptions};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tree = format::parse_str(
        "top cooling\n\
         basic a 0.003\n\
         basic c 0.003\n\
         basic e 0.000003\n\
         dynamic b erlang k=1 lambda=0.001 mu=0.05\n\
         dynamic d spare lambda=0.001 mu=0.05\n\
         gate pump1 or a b\n\
         gate pump2 or c d\n\
         gate pumps and pump1 pump2\n\
         gate cooling or pumps e\n\
         trigger pump1 d\n",
    )?;

    // Mean time to failure and long-run unavailability of the whole
    // system, from the exact product chain (small model).
    let chain = ProductChain::build(&tree, &ProductOptions::default())?;
    let opts = StationaryOptions::default();
    let mttf = chain.chain().mean_time_to_failure(&opts)?;
    println!(
        "system mean time to failure: {mttf:.1} h  ({:.1} years)",
        mttf / 8766.0
    );
    let unavailability = chain.steady_state_unavailability(&opts)?;
    println!("steady-state unavailability: {unavailability:.4e}");

    // Which event completes the dominant cutset {b, d}, and how often?
    let b = tree.node_by_name("b").unwrap();
    let d = tree.node_by_name("d").unwrap();
    let split = chain.completion_by_event(&[b, d], 24.0, 1e-12)?;
    println!("\ncutset {{b, d}} over 24h: Pr = {:.4e}", split.total);
    for (event, p) in &split.by_event {
        println!(
            "  completed by {:<2} failing last: {:.4e} ({:.1}%)",
            tree.name(*event),
            p,
            100.0 * p / split.total
        );
    }

    // Uncertainty: lognormal error factors on the static layer.
    let static_tree = format::parse_str(
        "top cooling\nbasic a 0.003\nbasic b 0.001\nbasic c 0.003\nbasic d 0.001\n\
         basic e 0.000003\ngate pump1 or a b\ngate pump2 or c d\n\
         gate pumps and pump1 pump2\ngate cooling or pumps e\n",
    )?;
    let probs = EventProbabilities::from_static(&static_tree)?;
    let mcs = minimal_cutsets(&static_tree, &probs, &MocusOptions::default())?;
    let result = propagate(
        &static_tree,
        &mcs,
        &probs,
        &HashMap::new(),
        &UncertaintyOptions::default(),
    );
    println!("\nuncertainty on the static frequency (EF 3 on every event):");
    println!("  {result}");

    // Modules: which gates could be analyzed independently?
    let mods = sdft::ft::modules(&tree);
    let names: Vec<&str> = mods.iter().map(|&g| tree.name(g)).collect();
    println!("\nindependent modules: {}", names.join(", "));
    Ok(())
}
